"""Keyed trace store: in-process LRU over compiled chunks, with an
optional on-disk layer shared across jobs and processes.

Chunks are keyed by ``(TraceSpec.key(chunk_pairs), chunk_index)`` --
that is, by app name + parameters + address base + seed + chunking +
the generator-source fingerprint -- so every simulation of the same
mix (any scheme, any process) replays the same compiled buffers
instead of re-running the Python generators item by item.

Layers, cheapest first:

1. **memory**: an LRU of at most ``max_chunks`` buffers (default 128
   chunks of 64K pairs = 128 MiB);
2. **shared memory**: enabled by ``REPRO_TRACE_SHM=1`` -- named
   host-wide segments published once by a sweep owner (``run_jobs``
   parent, service daemon) and mapped zero-copy by every worker
   (:mod:`repro.traces.shm`);
3. **disk**: enabled when ``REPRO_TRACE_CACHE`` names a directory
   (compact ``array('q').tofile`` binaries, native byte order --
   recorded in the ``meta.json`` sidecar and verified on load, so a
   cache directory copied across endianness fails loudly instead of
   corrupting traces);
4. **compile**: pull pairs from the spec's generator.  Each trace
   keeps a *producer* (its live generator plus the next chunk index)
   so sequential requests never regenerate the prefix; a request
   behind an evicted producer restarts the generator from item zero,
   which is always correct because the streams are deterministic.

Environment knobs:

- ``REPRO_TRACE_CACHE``: on-disk chunk directory (unset: memory only).
- ``REPRO_TRACE_CHUNK_PAIRS``: pairs per chunk (default 65536).
- ``REPRO_TRACE_MEM_CHUNKS``: in-memory LRU capacity in chunks
  (default 128).
- ``REPRO_TRACE_SHM``: ``1`` maps chunks through the shared-memory
  fabric (attach everywhere; publishing stays with sweep owners).
- ``REPRO_TRACE_SHM_SLACK``: publish-phase horizon multiplier over the
  job's instruction target (default 2.0; consumption past the target
  depends on co-runners, so the prefix is sized with slack and
  anything beyond it falls back to the layers below).
- ``REPRO_TRACE_SHM_MAX_CHUNKS``: per-trace publish cap in chunks
  (default 64 = 64 MiB per trace at default chunking).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from array import array
from collections import OrderedDict
from pathlib import Path

from repro.traces.chunks import DEFAULT_CHUNK_PAIRS, chunk_instructions, compile_chunk
from repro.traces.shm import get_pool, shm_enabled
from repro.traces.spec import TraceSpec

#: Producers kept alive per store (live generators are cheap; this
#: only bounds pathological sweeps over thousands of distinct traces).
MAX_PRODUCERS = 128

#: Cap on the spec->key and meta-written memos.  A batch sweep never
#: notices, but the experiment daemon's workers are resident for
#: days, and an unbounded memo over every trace ever simulated is a
#: slow leak.  Flushed wholesale (like the H3 position memos): the
#: recompute cost is one content hash / one ``meta.json`` stat.
MAX_KEY_MEMO = 4096

_DEFAULT_MEM_CHUNKS = 128


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    return float(value) if value else default


class TraceStore:
    """LRU + disk cache of compiled trace chunks."""

    def __init__(
        self, chunk_pairs: int | None = None, max_chunks: int | None = None
    ):
        self.chunk_pairs = chunk_pairs or _env_int(
            "REPRO_TRACE_CHUNK_PAIRS", DEFAULT_CHUNK_PAIRS
        )
        if self.chunk_pairs < 1:
            raise ValueError("chunk_pairs must be positive")
        self.max_chunks = max_chunks or _env_int(
            "REPRO_TRACE_MEM_CHUNKS", _DEFAULT_MEM_CHUNKS
        )
        self.max_list_chunks = _env_int("REPRO_TRACE_LIST_CHUNKS", 32)
        self._chunks: OrderedDict[tuple[str, int], array] = OrderedDict()
        self._lists: OrderedDict[tuple[str, int], list] = OrderedDict()
        self._producers: OrderedDict[str, tuple] = OrderedDict()
        self._keys: dict[TraceSpec, str] = {}
        self._meta_written: set[str] = set()
        self._endian_checked: set[str] = set()
        # Telemetry counters (pulled by the harness stats tree).
        self.mem_hits = 0
        self.disk_hits = 0
        self.compiles = 0
        self.evictions = 0
        self.bytes_compiled = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.shm_hits = 0
        self.shm_misses = 0
        self.shm_publishes = 0
        self.shm_bytes = 0

    # -- keys and layout ------------------------------------------------

    def key_of(self, spec: TraceSpec) -> str:
        """``spec``'s store key (memoised; specs are frozen)."""
        key = self._keys.get(spec)
        if key is None:
            key = spec.key(self.chunk_pairs)
            if len(self._keys) >= MAX_KEY_MEMO:
                self._keys.clear()
            self._keys[spec] = key
        return key

    @staticmethod
    def disk_dir() -> Path | None:
        """The on-disk layer's directory, or ``None`` when disabled.

        Read from the environment on every call so tests (and the
        harness) can repoint or disable the layer without rebuilding
        stores.
        """
        override = os.environ.get("REPRO_TRACE_CACHE")
        return Path(override) if override else None

    def _trace_dir(self, key: str) -> Path | None:
        root = self.disk_dir()
        return root / key[:2] / key if root is not None else None

    def _chunk_path(self, key: str, index: int) -> Path | None:
        trace_dir = self._trace_dir(key)
        return trace_dir / f"{index:08d}.i64" if trace_dir is not None else None

    # -- layered lookup -------------------------------------------------

    def get_chunk(self, spec: TraceSpec, index: int):
        """The ``index``-th chunk of ``spec``'s stream (memory, then
        shared memory, then disk, then compile).

        Returns ``array('q')`` from the private layers or a
        ``memoryview('q')`` over a shared segment -- interchangeable
        for every consumer (list cursor, numpy view, ``tolist``) and
        bitwise-identical by the parity suite.
        """
        if index < 0:
            raise ValueError("chunk index must be non-negative")
        key = self.key_of(spec)
        mem_key = (key, index)
        chunk = self._chunks.get(mem_key)
        if chunk is not None:
            self.mem_hits += 1
            self._chunks.move_to_end(mem_key)
            return chunk
        if shm_enabled():
            view = get_pool().attach(key, index, self.chunk_pairs)
            if view is not None:
                self.shm_hits += 1
                self.shm_bytes += view.nbytes
                self._remember(mem_key, view)
                return view
            self.shm_misses += 1
        chunk = self._load_disk(key, index)
        if chunk is not None:
            self.disk_hits += 1
            self._remember(mem_key, chunk)
            return chunk
        return self._compile_through(spec, key, index)

    def chunk_list(self, spec: TraceSpec, index: int) -> list[int]:
        """The chunk as a plain list (the event loop's cursor format:
        list indexing is the cheapest per-event read Python offers).

        List conversions are memoised in their own small LRU
        (``REPRO_TRACE_LIST_CHUNKS``, default 32 -- the hot set of one
        running simulation) so a sweep re-simulating the same mix pays
        ``tolist`` once, not once per scheme job.
        """
        key = (self.key_of(spec), index)
        lists = self._lists
        chunk = lists.get(key)
        if chunk is not None:
            lists.move_to_end(key)
            return chunk
        chunk = self.get_chunk(spec, index).tolist()
        lists[key] = chunk
        while len(lists) > self.max_list_chunks:
            lists.popitem(last=False)
        return chunk

    # -- memory layer ---------------------------------------------------

    def _remember(self, mem_key: tuple[str, int], chunk: array) -> None:
        chunks = self._chunks
        chunks[mem_key] = chunk
        chunks.move_to_end(mem_key)
        while len(chunks) > self.max_chunks:
            chunks.popitem(last=False)
            self.evictions += 1

    # -- disk layer -----------------------------------------------------

    def _check_byte_order(self, key: str) -> None:
        """Refuse to touch a trace directory written on a host of the
        other endianness.

        Chunk files are native-order (``tofile``); a
        ``REPRO_TRACE_CACHE`` directory copied between hosts of
        different byte order would deserialize into byte-swapped
        gaps/addresses and silently corrupt every simulation, so the
        recorded order in ``meta.json`` is checked once per trace.
        Directories written before the field existed are accepted as
        native (they cannot have crossed endianness through this
        code).
        """
        if key in self._endian_checked:
            return
        trace_dir = self._trace_dir(key)
        if trace_dir is None:
            return
        try:
            meta = json.loads((trace_dir / "meta.json").read_text())
        except (OSError, json.JSONDecodeError):
            meta = {}
        order = meta.get("byte_order")
        if order is not None and order != sys.byteorder:
            raise RuntimeError(
                f"trace cache {trace_dir} was written on a {order}-endian "
                f"host but this host is {sys.byteorder}-endian; chunk files "
                "are native byte order and cannot be loaded here. Point "
                "REPRO_TRACE_CACHE at a fresh directory or run "
                "`repro traces --purge` on this host's copy."
            )
        if len(self._endian_checked) >= MAX_KEY_MEMO:
            self._endian_checked.clear()
        self._endian_checked.add(key)

    def _load_disk(self, key: str, index: int) -> array | None:
        path = self._chunk_path(key, index)
        if path is None:
            return None
        self._check_byte_order(key)
        expected = 2 * self.chunk_pairs
        buf = array("q")
        try:
            with path.open("rb") as fh:
                buf.fromfile(fh, expected)
        except FileNotFoundError:
            return None
        except (OSError, EOFError, ValueError):
            # Torn write or truncated file (``fromfile`` raises
            # ``ValueError`` on a partial trailing item): drop it.
            path.unlink(missing_ok=True)
            return None
        self.bytes_read += buf.itemsize * expected
        return buf

    def _store_disk(self, spec: TraceSpec, key: str, index: int, chunk) -> None:
        path = self._chunk_path(key, index)
        if path is None:
            return
        # Writing native-order chunks into a foreign-order directory
        # would leave it inconsistent; refuse before touching it.
        self._check_byte_order(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                chunk.tofile(fh)
            os.replace(tmp, path)
            self.bytes_written += chunk.itemsize * len(chunk)
            if key not in self._meta_written:
                if len(self._meta_written) >= MAX_KEY_MEMO:
                    self._meta_written.clear()
                self._meta_written.add(key)
                meta = path.parent / "meta.json"
                if not meta.exists():
                    meta.write_text(
                        json.dumps(
                            {
                                **spec.describe(),
                                "chunk_pairs": self.chunk_pairs,
                                "byte_order": sys.byteorder,
                            },
                            indent=2,
                            sort_keys=True,
                        )
                        + "\n"
                    )
        except OSError:
            # A full or read-only disk must not fail the simulation.
            pass

    # -- compile layer --------------------------------------------------

    def _compile_through(self, spec: TraceSpec, key: str, index: int) -> array:
        """Compile chunks up to and including ``index``, remembering
        every chunk produced on the way."""
        producer = self._producers.pop(key, None)
        if producer is None or producer[1] > index:
            producer = (spec.generator(), 0)
        iterator, next_index = producer
        chunk_pairs = self.chunk_pairs
        chunk = None
        while next_index <= index:
            chunk = compile_chunk(iterator, chunk_pairs)
            self.compiles += 1
            self.bytes_compiled += chunk.itemsize * len(chunk)
            self._remember((key, next_index), chunk)
            self._store_disk(spec, key, next_index, chunk)
            next_index += 1
        producers = self._producers
        producers[key] = (iterator, next_index)
        while len(producers) > MAX_PRODUCERS:
            producers.popitem(last=False)
        return chunk

    # -- shared-memory layer (owner side) -------------------------------

    def publish_prefix(
        self,
        spec: TraceSpec,
        instructions: int,
        *,
        slack: float | None = None,
        max_chunks: int | None = None,
    ) -> int:
        """Publish ``spec``'s chunk prefix into the shared fabric.

        The owner side of ``REPRO_TRACE_SHM``: the ``run_jobs`` parent
        and the service daemon call this once per distinct trace so
        every worker attaches instead of compiling.  How many chunks a
        job of ``instructions`` consumes is not exactly knowable
        up-front (cores run past their target until all finish), so
        the prefix covers ``slack``-times the target, capped at
        ``max_chunks``; consumers past the horizon fall back to the
        layers below.  Published chunks are dropped from this store's
        private LRU so all consumers -- including workers forked from
        this process -- resolve them through the fabric.

        Returns the number of segments this call created (0 when the
        fabric is disabled or another publisher got there first).
        """
        if not shm_enabled():
            return 0
        if slack is None:
            slack = _env_float("REPRO_TRACE_SHM_SLACK", 2.0)
        if max_chunks is None:
            max_chunks = _env_int("REPRO_TRACE_SHM_MAX_CHUNKS", 64)
        pool = get_pool()
        key = self.key_of(spec)
        target = instructions * slack
        covered = 0
        created = 0
        for index in range(max_chunks):
            if covered >= target:
                break
            chunk = self.get_chunk(spec, index)
            if not isinstance(chunk, memoryview):
                view, fresh = pool.publish(key, index, chunk, self.chunk_pairs)
                if view is None:
                    # Fabric unavailable (full /dev/shm, torn racer):
                    # stop publishing; sims still work off lower layers.
                    break
                if fresh:
                    created += 1
                    self.shm_publishes += 1
                self._chunks.pop((key, index), None)
                self._lists.pop((key, index), None)
            covered += chunk_instructions(chunk)
        return created

    # -- inspection / maintenance ---------------------------------------

    def counters(self) -> dict[str, int]:
        return {
            "mem_hits": self.mem_hits,
            "disk_hits": self.disk_hits,
            "compiles": self.compiles,
            "evictions": self.evictions,
            "bytes_compiled": self.bytes_compiled,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "shm_hits": self.shm_hits,
            "shm_misses": self.shm_misses,
            "shm_publishes": self.shm_publishes,
            "shm_bytes": self.shm_bytes,
        }

    def register_stats(self, group) -> None:
        """Register the store's counters into a stats tree group."""
        group.stat("mem_hits", lambda: self.mem_hits, "chunks served from the in-process LRU")
        group.stat("disk_hits", lambda: self.disk_hits, "chunks loaded from the on-disk store")
        group.stat("compiles", lambda: self.compiles, "chunks compiled from generators")
        group.stat("evictions", lambda: self.evictions, "chunks dropped by the LRU")
        group.stat("bytes_compiled", lambda: self.bytes_compiled, "bytes produced by the compile layer")
        group.stat("bytes_read", lambda: self.bytes_read, "bytes loaded from disk")
        group.stat("bytes_written", lambda: self.bytes_written, "bytes persisted to disk")
        group.stat("shm_hits", lambda: self.shm_hits, "chunks attached from shared-memory segments")
        group.stat("shm_misses", lambda: self.shm_misses, "shared-memory lookups that fell through")
        group.stat("shm_publishes", lambda: self.shm_publishes, "segments published by this process")
        group.stat("shm_bytes", lambda: self.shm_bytes, "bytes served zero-copy from shared memory")

    def clear_memory(self) -> None:
        """Drop the LRU and producers (counters are kept)."""
        self._chunks.clear()
        self._lists.clear()
        self._producers.clear()
        self._keys.clear()
        self._meta_written.clear()
        self._endian_checked.clear()

    @classmethod
    def list_disk(cls) -> list[dict]:
        """Inventory of the on-disk store, one row per trace."""
        root = cls.disk_dir()
        if root is None or not root.is_dir():
            return []
        rows = []
        for trace_dir in sorted(root.glob("??/*")):
            if not trace_dir.is_dir():
                continue
            chunk_files = sorted(trace_dir.glob("*.i64"))
            meta_path = trace_dir / "meta.json"
            meta = {}
            if meta_path.exists():
                try:
                    meta = json.loads(meta_path.read_text())
                except (OSError, json.JSONDecodeError):
                    meta = {}
            rows.append(
                {
                    "key": trace_dir.name,
                    "chunks": len(chunk_files),
                    "bytes": sum(p.stat().st_size for p in chunk_files),
                    **{
                        k: meta[k]
                        for k in ("name", "kind", "base", "seed", "chunk_pairs")
                        if k in meta
                    },
                }
            )
        return rows

    @classmethod
    def purge_disk(cls) -> int:
        """Delete every on-disk trace; returns the number removed."""
        root = cls.disk_dir()
        if root is None or not root.is_dir():
            return 0
        removed = 0
        for trace_dir in root.glob("??/*"):
            if not trace_dir.is_dir():
                continue
            for path in trace_dir.iterdir():
                path.unlink(missing_ok=True)
            trace_dir.rmdir()
            removed += 1
        for fanout in root.glob("??"):
            try:
                fanout.rmdir()
            except OSError:
                pass
        return removed


_STORE: TraceStore | None = None


def get_store() -> TraceStore:
    """The process-wide trace store (created on first use)."""
    global _STORE
    if _STORE is None:
        _STORE = TraceStore()
    return _STORE


def reset_store() -> TraceStore:
    """Replace the process-wide store (tests; chunking knob changes)."""
    global _STORE
    _STORE = TraceStore()
    return _STORE
