"""repro.traces: the batched trace pipeline.

The workload generators (:mod:`repro.workloads.generators`) define
each core's address stream; this package decouples *producing* those
streams from *consuming* them, the way zsim batches its instruction
feed ahead of the timing model:

- :class:`TraceSpec` names a stream by value (app name, parameters,
  base, seed) and doubles as a plain trace factory;
- :func:`~repro.traces.chunks.compile_chunk` flattens a stream into
  ``array('q')`` gap/addr chunk buffers;
- :class:`TraceStore` caches chunks under content keys, with an
  in-process LRU, an optional host-wide shared-memory layer
  (``REPRO_TRACE_SHM=1``, :class:`SharedChunkPool`) and an optional
  on-disk layer (``REPRO_TRACE_CACHE``), so one compilation feeds
  every scheme job -- and every worker process -- in a sweep;
- :meth:`repro.sim.system.CMPSystem.run` consumes chunks through an
  index cursor instead of per-event generator calls
  (``REPRO_TRACE_CHUNKS=0`` restores the generator feed).
"""

from repro.traces.chunks import DEFAULT_CHUNK_PAIRS, chunk_nbytes, compile_chunk
from repro.traces.shm import SharedChunkPool, get_pool, reset_pool, shm_enabled
from repro.traces.spec import TRACE_FORMAT_VERSION, TraceSpec, generator_fingerprint
from repro.traces.store import TraceStore, get_store, reset_store


def register_stats(group) -> None:
    """Register the process-wide trace store into a stats tree group."""
    get_store().register_stats(group)


__all__ = [
    "DEFAULT_CHUNK_PAIRS",
    "TRACE_FORMAT_VERSION",
    "SharedChunkPool",
    "TraceSpec",
    "TraceStore",
    "chunk_nbytes",
    "compile_chunk",
    "generator_fingerprint",
    "get_pool",
    "get_store",
    "register_stats",
    "reset_pool",
    "reset_store",
    "shm_enabled",
]
