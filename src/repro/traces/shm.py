"""Zero-copy shared-memory trace fabric (``REPRO_TRACE_SHM=1``).

A sweep fans one set of compiled trace chunks out to every worker on
the host: ``run_jobs`` pool workers, the daemon's resident workers,
and any concurrent CLI run all replay the same ``(gap, addr)``
buffers.  Without this module each process keeps a private chunk LRU
(default 128 MiB) and independently re-compiles or re-deserializes
identical chunks.  :class:`SharedChunkPool` instead publishes each
compiled chunk once into a named shared-memory segment, content-keyed
by the trace store's ``(TraceSpec.key, chunk index)`` scheme, and
every other process maps the same pages zero-copy
(``memoryview.cast('q')``) -- bitwise-identical to the private
``array('q')`` lane, which the parity suite asserts.

Segments are plain files on the shared-memory tmpfs (``/dev/shm``),
created exclusively and mapped with :mod:`mmap` -- deliberately *not*
``multiprocessing.shared_memory``: its resource tracker keeps one
deduplicating name set for the whole fork tree, so any worker's
attach/detach cycle erases the publisher's registration and the
tracker then crashes (and double-unlinks) at exit.  Here ownership is
explicit instead: the publishing process unlinks its names at exit,
and the scavenger reclaims anything a crashed owner left behind.  On
platforms without ``/dev/shm`` the fabric quietly disables itself and
every consumer falls back to the private layers.

Segment layout (DESIGN.md section 13)::

    offset   0: int64 magic      (SEGMENT_MAGIC)
    offset   8: int64 version    (SEGMENT_VERSION)
    offset  16: int64 chunk_pairs
    offset  24: int64 payload items (2 * chunk_pairs)
    offset  32: int64 publisher pid
    offset  40: int64 seal       (0 while publishing, 1 once complete)
    offset  48: 16 bytes reserved
    offset  64: payload (interleaved gap/addr int64 pairs)

The publisher writes the payload first and the seal word *last*, so a
reader that observes ``seal == 1`` observes a complete payload; an
unsealed segment is *torn* (its publisher died mid-copy) and is never
served.  Publishing is first-creator-wins: a concurrent publisher
that loses the ``O_EXCL`` create race attaches the winner's segment,
and if the winner is still mid-publish the loser simply keeps its
private copy -- sharing is an optimisation, never a correctness
dependency.

Lifecycle: the process that creates a segment owns it and unlinks it
at interpreter exit (a pid-guarded ``atexit`` hook, so forked workers
inheriting the registry never unlink) or explicitly via
:meth:`SharedChunkPool.close`.  Segments orphaned by a SIGKILLed
owner are removed by :meth:`SharedChunkPool.scavenge`, which runs
before every publish phase: any ``repro_trc_*`` segment whose
publisher pid is dead -- sealed or torn -- is unlinked.  POSIX
semantics keep already-attached readers safe across an unlink: their
mappings stay valid; only new attaches miss (and fall back).
"""

from __future__ import annotations

import atexit
import mmap
import os
import struct
from collections import OrderedDict
from pathlib import Path

#: Prefix of every segment name this module creates (visible under
#: ``/dev/shm``; ``repro traces --list`` enumerates them).
SEGMENT_PREFIX = "repro_trc_"

#: First header word; any other value means "not one of our segments".
SEGMENT_MAGIC = int.from_bytes(b"RPTRCSHM", "little")

#: Bump when the header or payload layout changes.
SEGMENT_VERSION = 1

#: Header size in bytes (8 int64 slots; payload stays 64-byte aligned).
HEADER_BYTES = 64
_HEADER_FMT = "<8q"

#: Non-owned attachments kept mapped per process.  Resident daemon
#: workers attach lazily and would otherwise accumulate one mapping
#: per chunk ever simulated; beyond the cap the oldest attachment is
#: dropped best-effort (skipped while its buffer is still exported)
#: and simply re-attached on next use.
MAX_ATTACHED = 512

_ITEMSIZE = 8


def shm_enabled() -> bool:
    """Is the shared-memory trace fabric requested? (read per call so
    tests and the harness can flip it without rebuilding stores)."""
    return os.environ.get("REPRO_TRACE_SHM", "0") == "1"


def segment_name(key: str, index: int) -> str:
    """Segment name for chunk ``index`` of the trace named ``key``.

    20 hex chars of the store's sha256 content key keep names far
    under ``NAME_MAX`` while making cross-trace collisions
    negligible; the key already folds in chunking and generator
    fingerprints, so equal names imply equal payloads.
    """
    return f"{SEGMENT_PREFIX}{key[:20]}_{index:06d}"


def shm_dir() -> Path | None:
    """The shared-memory tmpfs, or ``None`` when the platform has
    none (the fabric is then disabled and every consumer falls back
    to the private layers)."""
    path = Path("/dev/shm")
    return path if path.is_dir() else None


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class _Segment:
    """One mapped segment: the mapping, its canonical int64 payload
    view, and the bookkeeping the unlink protocol needs."""

    __slots__ = ("map", "view", "owned", "unlinked", "refs")

    def __init__(self, mapping, view, owned: bool):
        self.map = mapping
        self.view = view
        self.owned = owned
        self.unlinked = False
        self.refs = 0


class SharedChunkPool:
    """Process-local registry of attached/published chunk segments.

    One pool per process (see :func:`get_pool`); every
    :class:`~repro.traces.store.TraceStore` in the process shares it,
    so a segment is mapped at most once no matter how many stores or
    sweeps touch it.  All methods are best-effort: any OS-level
    failure (exhausted ``/dev/shm``, permissions, an unsupported
    platform) degrades to "not shared", never to a failed simulation.
    """

    def __init__(self):
        self._segments: OrderedDict[str, _Segment] = OrderedDict()
        self._atexit_pid: int | None = None
        # Telemetry (mirrored into TraceStore counters by callers).
        self.attaches = 0
        self.publishes = 0
        self.errors = 0

    # -- mapping ------------------------------------------------------

    @staticmethod
    def _payload_view(mapping, items: int):
        return memoryview(mapping)[
            HEADER_BYTES : HEADER_BYTES + items * _ITEMSIZE
        ].cast("q")

    def attach(self, key: str, index: int, chunk_pairs: int):
        """Map chunk ``(key, index)`` if a sealed segment exists.

        Returns the payload as a ``memoryview('q')`` -- a drop-in for
        the private ``array('q')`` chunks (``tolist``, the buffer
        protocol, indexing and slicing all behave identically) -- or
        ``None`` on a miss.
        """
        name = segment_name(key, index)
        seg = self._segments.get(name)
        if seg is not None:
            if seg.unlinked:
                return None
            self._segments.move_to_end(name)
            seg.refs += 1
            self.attaches += 1
            return seg.view
        root = shm_dir()
        if root is None:
            return None
        items = 2 * chunk_pairs
        size = HEADER_BYTES + items * _ITEMSIZE
        try:
            fd = os.open(root / name, os.O_RDWR)
        except FileNotFoundError:
            return None
        except OSError:
            self.errors += 1
            return None
        try:
            if os.fstat(fd).st_size < size:
                return None
            mapping = mmap.mmap(fd, size)
        except (OSError, ValueError):
            self.errors += 1
            return None
        finally:
            os.close(fd)
        header = struct.unpack(_HEADER_FMT, mapping[:HEADER_BYTES])
        if (
            header[0] != SEGMENT_MAGIC
            or header[1] != SEGMENT_VERSION
            or header[2] != chunk_pairs
            or header[3] != items
            or header[5] != 1
        ):
            # Torn, foreign, or mismatched segment: never serve it.
            # The scavenger decides whether it can be removed.
            mapping.close()
            return None
        seg = _Segment(mapping, self._payload_view(mapping, items), owned=False)
        seg.refs = 1
        self._remember(name, seg)
        self._ensure_atexit()
        self.attaches += 1
        return seg.view

    def publish(self, key: str, index: int, buf, chunk_pairs: int):
        """Publish ``buf`` (any int64 buffer of ``2 * chunk_pairs``
        items) as chunk ``(key, index)``.

        Returns ``(view, fresh)``: the shared payload view to use in
        place of the private buffer and whether this call created the
        segment, or ``(None, False)`` when publishing is impossible
        (lost race against a still-copying publisher, OS failure).
        """
        name = segment_name(key, index)
        seg = self._segments.get(name)
        if seg is not None and not seg.unlinked:
            seg.refs += 1
            return seg.view, False
        items = 2 * chunk_pairs
        if len(buf) != items:
            raise ValueError(
                f"chunk {key[:10]}.../{index} has {len(buf)} items, "
                f"expected {items}"
            )
        root = shm_dir()
        if root is None:
            return None, False
        size = HEADER_BYTES + items * _ITEMSIZE
        try:
            fd = os.open(root / name, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        except FileExistsError:
            return self.attach(key, index, chunk_pairs), False
        except OSError:
            self.errors += 1
            return None, False
        try:
            os.ftruncate(fd, size)
            mapping = mmap.mmap(fd, size)
        except (OSError, ValueError):
            self.errors += 1
            try:
                os.close(fd)
                os.unlink(root / name)
            except OSError:
                pass
            return None, False
        os.close(fd)
        view = self._payload_view(mapping, items)
        view[:] = buf if isinstance(buf, memoryview) else memoryview(buf)
        # The seal word is written strictly after the payload: a
        # reader that sees seal == 1 sees a complete chunk.
        mapping[:HEADER_BYTES] = struct.pack(
            _HEADER_FMT,
            SEGMENT_MAGIC,
            SEGMENT_VERSION,
            chunk_pairs,
            items,
            os.getpid(),
            0,
            0,
            0,
        )
        mapping[40:48] = struct.pack("<q", 1)
        seg = _Segment(mapping, view, owned=True)
        seg.refs = 1
        self._remember(name, seg)
        self._ensure_atexit()
        self.publishes += 1
        return view, True

    def is_published(self, key: str, index: int) -> bool:
        seg = self._segments.get(segment_name(key, index))
        return seg is not None and not seg.unlinked

    def _remember(self, name: str, seg: _Segment) -> None:
        self._segments[name] = seg
        self._segments.move_to_end(name)
        attached = sum(1 for s in self._segments.values() if not s.owned)
        if attached <= MAX_ATTACHED:
            return
        for evict_name, evict in list(self._segments.items()):
            if attached <= MAX_ATTACHED:
                break
            if evict.owned or evict_name == name:
                continue
            if self._drop(evict_name, evict):
                attached -= 1

    def _drop(self, name: str, seg: _Segment) -> bool:
        """Release and close one mapping; False when its payload view
        is still exported (kept and retried on a later eviction)."""
        try:
            seg.view.release()
        except BufferError:
            return False
        self._segments.pop(name, None)
        try:
            seg.map.close()
        except BufferError:
            # Some other buffer over the mapping is still exported;
            # it is closed when that export dies.
            pass
        return True

    # -- lifecycle ----------------------------------------------------

    def owned_names(self) -> list[str]:
        return [
            name
            for name, seg in self._segments.items()
            if seg.owned and not seg.unlinked
        ]

    def unlink_owned(self) -> int:
        """Unlink every segment this process published.

        Mappings (ours and other processes') stay valid; only the
        names disappear, so new attaches miss and fall back.  Returns
        the number of names removed.
        """
        root = shm_dir()
        removed = 0
        for name, seg in self._segments.items():
            if not seg.owned or seg.unlinked:
                continue
            seg.unlinked = True
            if root is None:
                continue
            try:
                os.unlink(root / name)
            except FileNotFoundError:
                pass
            except OSError:
                self.errors += 1
                continue
            removed += 1
        return removed

    def close(self, unlink: bool = True) -> None:
        """Shut the pool down: unlink owned names (when ``unlink``)
        and close every mapping whose buffer is no longer exported.
        Mappings still referenced (a live memoryview in some LRU) are
        left for process exit to reclaim -- closing them would raise
        ``BufferError`` mid-simulation."""
        if unlink:
            self.unlink_owned()
        for name, seg in list(self._segments.items()):
            self._drop(name, seg)

    def _ensure_atexit(self) -> None:
        if self._atexit_pid is None:
            self._atexit_pid = os.getpid()
            atexit.register(self._atexit_cleanup)

    def _atexit_cleanup(self) -> None:
        # Forked children inherit this hook with the registry; the pid
        # guard keeps a worker's exit from unlinking segments the
        # parent (and its siblings) still serve.
        if self._atexit_pid == os.getpid():
            self.unlink_owned()
        for seg in self._segments.values():
            try:
                seg.view.release()
                seg.map.close()
            except Exception:
                # Still exported somewhere teardown has not reached;
                # the OS reclaims the mapping at process exit.
                pass
        self._segments.clear()

    # -- host-wide inspection / maintenance ---------------------------

    @staticmethod
    def _peek(path: Path) -> dict | None:
        """Header of the segment at ``path``, without mapping it."""
        try:
            size = path.stat().st_size
            with path.open("rb") as fh:
                raw = fh.read(HEADER_BYTES)
        except OSError:
            return None
        if len(raw) < HEADER_BYTES:
            header = (0,) * 8
        else:
            header = struct.unpack(_HEADER_FMT, raw)
        if header[0] != SEGMENT_MAGIC:
            # Created but not yet (or never) headered: torn.
            return {
                "name": path.name,
                "version": 0,
                "chunk_pairs": 0,
                "items": 0,
                "pid": 0,
                "sealed": False,
                "bytes": size,
            }
        return {
            "name": path.name,
            "version": header[1],
            "chunk_pairs": header[2],
            "items": header[3],
            "pid": header[4],
            "sealed": header[5] == 1,
            "bytes": size,
        }

    @classmethod
    def host_segments(cls) -> list[dict]:
        """Every repro trace segment on this host (name order), with
        publisher liveness and a best-effort attach count."""
        root = shm_dir()
        if root is None:
            return []
        rows = []
        for path in sorted(root.glob(SEGMENT_PREFIX + "*")):
            info = cls._peek(path)
            if info is None:
                continue
            info["publisher_alive"] = _pid_alive(info["pid"])
            info["attached"] = _attach_count(path)
            rows.append(info)
        return rows

    @classmethod
    def scavenge(cls) -> int:
        """Unlink segments orphaned by dead publishers.

        Run before every publish phase and by ``repro traces
        --purge``: a segment -- sealed or torn -- whose publisher pid
        no longer exists belongs to a crashed or SIGKILLed run and is
        removed.  Live publishers' segments are never touched, so
        concurrent sweeps on one host cannot scavenge each other.
        """
        root = shm_dir()
        if root is None:
            return 0
        removed = 0
        for path in sorted(root.glob(SEGMENT_PREFIX + "*")):
            info = cls._peek(path)
            if info is None or _pid_alive(info["pid"]):
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @classmethod
    def purge_host(cls) -> int:
        """Unlink every repro trace segment on the host, live
        publishers included (explicit ``repro traces --purge
        --force``; attached runs keep their mappings and new lookups
        fall back to compiling)."""
        root = shm_dir()
        if root is None:
            return 0
        removed = 0
        for path in sorted(root.glob(SEGMENT_PREFIX + "*")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def _attach_count(path: Path) -> int | None:
    """Processes currently mapping ``path`` (Linux; None elsewhere).

    Scans ``/proc/*/maps`` -- only used by ``repro traces --list``,
    never on a hot path.
    """
    proc = Path("/proc")
    if not proc.is_dir():
        return None
    target = str(path)
    count = 0
    for entry in proc.iterdir():
        if not entry.name.isdigit():
            continue
        try:
            with (entry / "maps").open() as fh:
                if any(target in line for line in fh):
                    count += 1
        except OSError:
            continue
    return count


_POOL: SharedChunkPool | None = None


def get_pool() -> SharedChunkPool:
    """The process-wide segment pool (created on first use)."""
    global _POOL
    if _POOL is None:
        _POOL = SharedChunkPool()
    return _POOL


def reset_pool() -> SharedChunkPool:
    """Replace the process-wide pool (tests).  The old pool's owned
    segments are unlinked first so tests cannot leak segments."""
    global _POOL
    if _POOL is not None:
        _POOL.close(unlink=True)
    _POOL = SharedChunkPool()
    return _POOL
