"""Compiling generator streams into flat integer chunk buffers.

A chunk is ``array('q')`` of ``2 * chunk_pairs`` items: interleaved
``gap, addr, gap, addr, ...`` pairs.  Flat native-int buffers are what
makes the event loop's chunk cursor cheap (two indexed reads per
event, no generator frame resume, no tuple allocation) and what makes
the on-disk layer compact (``tofile``/``fromfile`` round-trips with no
serialisation framing).
"""

from __future__ import annotations

from array import array
from itertools import chain, islice

#: Default pairs per chunk (64K pairs = 1 MiB of int64 per chunk).
DEFAULT_CHUNK_PAIRS = 65_536


def compile_chunk(iterator, chunk_pairs: int) -> array:
    """Materialise the next ``chunk_pairs`` ``(gap, addr)`` pairs of
    ``iterator`` as one flat buffer.

    The ``islice``/``chain.from_iterable`` pipeline keeps the per-item
    work in C: the only Python-level cost is the generator itself.
    Trace generators are infinite by contract; a stream that ends
    mid-chunk raises ``ValueError`` rather than yielding a short
    buffer.
    """
    buf = array("q", chain.from_iterable(islice(iterator, chunk_pairs)))
    if len(buf) != 2 * chunk_pairs:
        raise ValueError(
            f"trace generator ended after {len(buf) // 2} pairs; "
            f"trace streams must be infinite"
        )
    return buf


def chunk_nbytes(chunk_pairs: int) -> int:
    """On-disk / in-memory size of one chunk in bytes."""
    return 2 * chunk_pairs * array("q").itemsize


def segment_profile(buf, start: int, limit: int, max_pairs: int) -> tuple[int, int]:
    """Accesses and summed instruction gaps of a buffer segment.

    Profiles up to ``max_pairs`` ``(gap, addr)`` pairs of ``buf``
    starting at flat index ``start`` (bounded by ``limit``), returning
    ``(pairs, gap_sum)``.  The fast-forward planner uses this to cost a
    candidate skip span at C speed: ``sum`` over an extended slice
    touches no Python-level loop, so profiling a whole chunk tail costs
    microseconds, not the milliseconds simulating it would.
    """
    if max_pairs <= 0 or start >= limit:
        return 0, 0
    end = start + 2 * max_pairs
    if end > limit:
        end = limit
    return (end - start) // 2, sum(buf[start:end:2])


def chunk_instructions(buf) -> int:
    """Instructions covered by one compiled chunk buffer.

    Every ``(gap, addr)`` pair is ``gap`` skipped instructions plus
    the access itself, so a chunk covers ``pairs + sum(gaps)``.  The
    shared-memory publish phase uses this to size the chunk prefix a
    job of N instructions will consume; the extended-slice ``sum``
    keeps it at C speed for both ``array('q')`` and memoryview chunks.
    """
    return len(buf) // 2 + sum(buf[0::2])


def chunk_array_view(chunk: array):
    """Zero-copy ``int64`` ndarray view of a compiled chunk.

    The vectorized batch kernels (``REPRO_NUMPY=1``) slice gap/addr
    columns out of this view; the list form stays the scalar cursor
    format.  Returns ``None`` when numpy is unavailable (callers fall
    back to the scalar kernels).
    """
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is present in CI
        return None
    return numpy.frombuffer(chunk, dtype=numpy.int64)
