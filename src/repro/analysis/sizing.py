"""Sizing and stability models: Equations 4-9 and Section 4.3.

These closed forms are what makes Vantage "derived from analytical
models": they bound how much space partitions can borrow from the
unmanaged region and therefore how large that region must be --
independently of the number of partitions or their behaviour.
"""

from __future__ import annotations

from collections.abc import Sequence


def aperture(size: float, target: float, a_max: float, slack: float) -> float:
    """Feedback aperture transfer function (Equation 7, Fig 3a).

    Maps a partition's current ``size`` to the fraction of its
    replacement candidates that should be demoted: 0 at or below the
    ``target``, ramping linearly to ``a_max`` at ``(1 + slack) *
    target``, and saturating beyond.
    """
    if target <= 0:
        # A deleted partition (target 0) drains at full aperture.
        return a_max if size > 0 else 0.0
    if size <= target:
        return 0.0
    if size > (1.0 + slack) * target:
        return a_max
    return (a_max / slack) * (size - target) / target


def equilibrium_apertures(
    churns: Sequence[float],
    sizes: Sequence[float],
    r: int,
    m: float,
) -> list[float]:
    """Steady-state apertures for given churns and sizes (Equation 4).

    ``A_i = (C_i / sum C) * (sum S / S_i) * 1 / (R * m)``; sizes are
    fractions of total cache capacity, churns in any common rate unit.
    Partitions with zero size get an aperture of 1.0 (every candidate
    demoted) as the limiting behaviour.
    """
    if len(churns) != len(sizes):
        raise ValueError("churns and sizes must have the same length")
    total_churn = sum(churns)
    total_size = sum(sizes)
    if total_churn <= 0 or total_size <= 0:
        return [0.0] * len(churns)
    out = []
    for churn, size in zip(churns, sizes):
        if size <= 0:
            out.append(1.0 if churn > 0 else 0.0)
            continue
        out.append((churn / total_churn) * (total_size / size) / (r * m))
    return out


def minimum_stable_size(
    churn_fraction: float,
    total_size: float,
    a_max: float,
    r: int,
    m: float,
) -> float:
    """Minimum stable size of a high-churn partition (Equation 5).

    A partition whose target is too small for its churn grows until
    its aperture falls to ``a_max``; this is the size it settles at.
    ``churn_fraction`` is ``C_j / sum C`` and ``total_size`` is
    ``sum S`` as a fraction of the cache.
    """
    return churn_fraction * total_size / (a_max * r * m)


def worst_case_borrowed(a_max: float, r: int, m: float | None = None) -> float:
    """Total space borrowed by minimum-stable-size partitions (Eq 6).

    With ``m`` given, returns the exact ``1 / (a_max * R - 1/m)``;
    without it, the paper's approximation ``1 / (a_max * R)``.
    Independent of the number of partitions -- the scalability
    guarantee.
    """
    if m is None:
        return 1.0 / (a_max * r)
    denom = a_max * r - 1.0 / m
    if denom <= 0:
        raise ValueError("a_max * R must exceed 1/m for stability")
    return 1.0 / denom


def slack_outgrowth(slack: float, a_max: float, r: int) -> float:
    """Aggregate steady-state overshoot of all partitions (Equation 9).

    Feedback-based aperture control lets partitions sit slightly above
    their targets; summed over all partitions this is
    ``slack / (a_max * R)`` of the cache, again independent of the
    partition count.
    """
    return slack / (a_max * r)


def required_unmanaged_fraction(
    r: int,
    a_max: float = 0.5,
    slack: float = 0.1,
    pev: float = 1e-2,
) -> float:
    """Unmanaged-region size for a target managed-eviction probability.

    Section 4.3: ``u = 1 - Pev^(1/R) + (1 + slack) / (a_max * R)``.
    The first term makes a forced eviction from the managed region at
    most ``pev`` likely per replacement; the second reserves room for
    minimum-stable-size growth (Eq 6) plus feedback slack (Eq 9).
    This is the function behind both panels of Figure 5.
    """
    if not 0.0 < pev <= 1.0:
        raise ValueError(f"pev must be in (0, 1], got {pev}")
    if r <= 0:
        raise ValueError(f"r must be positive, got {r}")
    return (1.0 - pev ** (1.0 / r)) + (1.0 + slack) / (a_max * r)


def worst_case_pev(
    u: float,
    r: int,
    a_max: float = 0.5,
    slack: float = 0.1,
) -> float:
    """Inverse of :func:`required_unmanaged_fraction`.

    Given a total unmanaged fraction ``u``, subtracts the borrowing
    reserve and returns the worst-case probability that a replacement
    finds no unmanaged candidate, ``(1 - u_eff)^R``.  Returns 1.0 when
    the reserve alone exceeds ``u`` (no eviction buffer at all).
    """
    u_eff = u - (1.0 + slack) / (a_max * r)
    if u_eff <= 0.0:
        return 1.0
    return (1.0 - u_eff) ** r
