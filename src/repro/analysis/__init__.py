"""Analytical models (Equations 1-9) and measurement utilities."""

from repro.analysis.assoc import (
    aperture_demotion_cdf,
    associativity_cdf,
    associativity_cdf_curve,
    binomial_in_managed,
    empirical_cdf,
    equilibrium_aperture,
    forced_demotion_cdf,
)
from repro.analysis.metrics import (
    fairness,
    harmonic_mean_speedup,
    throughput,
    weighted_speedup,
)
from repro.analysis.overheads import (
    VantageOverheads,
    partition_id_bits,
    register_bits_per_partition,
    vantage_overheads,
)
from repro.analysis.sizing import (
    aperture,
    equilibrium_apertures,
    minimum_stable_size,
    required_unmanaged_fraction,
    slack_outgrowth,
    worst_case_borrowed,
    worst_case_pev,
)
from repro.analysis.stats import (
    PriorityMonitor,
    SizeTimeSeries,
    attach_demotion_monitor,
    attach_eviction_monitor,
    fraction_above,
    geo_mean,
)

__all__ = [
    "PriorityMonitor",
    "SizeTimeSeries",
    "VantageOverheads",
    "aperture",
    "aperture_demotion_cdf",
    "associativity_cdf",
    "associativity_cdf_curve",
    "attach_demotion_monitor",
    "attach_eviction_monitor",
    "binomial_in_managed",
    "empirical_cdf",
    "equilibrium_aperture",
    "equilibrium_apertures",
    "fairness",
    "fraction_above",
    "forced_demotion_cdf",
    "geo_mean",
    "harmonic_mean_speedup",
    "minimum_stable_size",
    "partition_id_bits",
    "register_bits_per_partition",
    "required_unmanaged_fraction",
    "slack_outgrowth",
    "throughput",
    "vantage_overheads",
    "weighted_speedup",
    "worst_case_borrowed",
    "worst_case_pev",
]
