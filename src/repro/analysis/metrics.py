"""Multiprogrammed performance metrics.

The paper reports aggregate throughput (sum of IPCs) and notes that
weighted speedup and the harmonic mean of weighted speedups "do not
offer additional insights" for UCP-driven runs.  All three are
provided so users can check that for themselves: throughput favours
high-IPC threads, weighted speedup normalises each thread by its
alone-run IPC, and the harmonic mean penalises unfairness.
"""

from __future__ import annotations

from collections.abc import Sequence


def throughput(ipcs: Sequence[float]) -> float:
    """Aggregate throughput: sum of per-thread IPCs."""
    return sum(ipcs)


def weighted_speedup(ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Sum of per-thread speedups relative to running alone
    (Snavely & Tullsen)."""
    _check(ipcs, alone_ipcs)
    return sum(ipc / alone for ipc, alone in zip(ipcs, alone_ipcs))

def harmonic_mean_speedup(ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Harmonic mean of weighted speedups (Luo et al.): rewards both
    performance and fairness."""
    _check(ipcs, alone_ipcs)
    denominator = sum(alone / ipc for ipc, alone in zip(ipcs, alone_ipcs))
    return len(ipcs) / denominator


def fairness(ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Min/max ratio of per-thread slowdowns: 1.0 is perfectly fair."""
    _check(ipcs, alone_ipcs)
    slowdowns = [alone / ipc for ipc, alone in zip(ipcs, alone_ipcs)]
    return min(slowdowns) / max(slowdowns)


def _check(ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> None:
    if len(ipcs) != len(alone_ipcs):
        raise ValueError("ipcs and alone_ipcs must have the same length")
    if not ipcs:
        raise ValueError("metrics need at least one thread")
    if any(v <= 0 for v in ipcs) or any(v <= 0 for v in alone_ipcs):
        raise ValueError("IPCs must be positive")
