"""Associativity distributions: Equations 1-3 (Figures 1 and 2).

The analytical framework (from the zcache paper [21]) gives every line
a uniformly distributed eviction priority in [0, 1]; a cache that
examines R independent uniform candidates per replacement evicts the
maximum of R uniforms, whose CDF is x^R.  Vantage's managed-region
variants follow from conditioning on how many of the R candidates land
in the managed region.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def associativity_cdf(x: float, r: int) -> float:
    """F_A(x) = x^R (Equation 1): probability that an eviction removes
    a line of eviction priority <= x, with R uniform candidates."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    return x**r


def associativity_cdf_curve(xs: Iterable[float], r: int) -> list[float]:
    return [associativity_cdf(x, r) for x in xs]


def binomial_in_managed(i: int, r: int, u: float) -> float:
    """B(i, R): probability that exactly ``i`` of R candidates fall in
    the managed region when a fraction ``u`` of lines is unmanaged."""
    return math.comb(r, i) * (1.0 - u) ** i * u ** (r - i)


def forced_demotion_cdf(x: float, r: int, u: float) -> float:
    """Demotion-priority CDF with exactly one demotion per eviction
    (Equation 2, Figure 2b).

    Demoting always the single worst managed candidate makes the
    demotion distribution a mixture of max-of-i-uniforms weighted by
    the binomial split of candidates between regions.  The i = 0 and
    i = R corner cases are negligible and ignored, as in the paper;
    the mixture is renormalised over 1 <= i <= R-1.
    """
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    total = 0.0
    weight = 0.0
    for i in range(1, r):
        b = binomial_in_managed(i, r, u)
        weight += b
        total += b * x**i
    return total / weight if weight else 0.0


def aperture_demotion_cdf(x: float, a: float) -> float:
    """Demotion-priority CDF when demoting one per eviction *on
    average* with aperture ``a`` (Equation 3, Figure 2c): uniform on
    [1 - A, 1]."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if a <= 0.0:
        return 0.0 if x < 1.0 else 1.0
    if x < 1.0 - a:
        return 0.0
    return (x - (1.0 - a)) / a


def equilibrium_aperture(r: int, m: float) -> float:
    """Aperture that balances one demotion per eviction on average
    when all partitions behave alike: ``A = 1 / (R * m)``."""
    if r <= 0 or m <= 0:
        raise ValueError("r and m must be positive")
    return min(1.0, 1.0 / (r * m))


def empirical_cdf(samples: Sequence[float], xs: Sequence[float]) -> list[float]:
    """Evaluate the empirical CDF of ``samples`` at each point of ``xs``."""
    if not samples:
        return [0.0] * len(xs)
    ordered = sorted(samples)
    n = len(ordered)
    out = []
    import bisect

    for x in xs:
        out.append(bisect.bisect_right(ordered, x) / n)
    return out
