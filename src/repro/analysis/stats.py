"""Measurement helpers: priority quantiles, CDFs, summary metrics.

The paper's empirical associativity plots (Fig 2 validation, Fig 8
heat maps) need, for every eviction or demotion, the victim's
*eviction-priority quantile*: the fraction of lines in scope (the
whole cache, or the victim's partition) that the replacement policy
ranks no closer to eviction than the victim.  Computing that exactly
is O(cache size) per event, so :class:`PriorityMonitor` estimates it
by sampling a fixed number of resident lines per event -- unbiased and
plenty accurate for CDF plots.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean; values must be positive."""
    if not values:
        raise ValueError("geo_mean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def fraction_above(values: Sequence[float], threshold: float) -> float:
    if not values:
        return 0.0
    return sum(1 for v in values if v > threshold) / len(values)


class PriorityMonitor:
    """Collects eviction/demotion priority quantiles by sampling.

    Attach with :func:`attach_eviction_monitor` or
    :func:`attach_demotion_monitor`; afterwards :attr:`quantiles`
    holds one entry in [0, 1] per observed event (optionally tagged
    with the event's partition and a user-supplied clock).
    """

    def __init__(self, sample_size: int = 96, seed: int = 0):
        self.sample_size = sample_size
        self.rng = random.Random(seed)
        self.quantiles: list[float] = []
        self.parts: list[int] = []
        self.times: list[int] = []
        self.clock = 0

    def observe(self, quantile: float, part: int) -> None:
        self.quantiles.append(quantile)
        self.parts.append(part)
        self.times.append(self.clock)

    def quantiles_for(self, part: int) -> list[float]:
        return [q for q, p in zip(self.quantiles, self.parts) if p == part]

    def cdf(self, xs: Sequence[float], part: int | None = None) -> list[float]:
        from repro.analysis.assoc import empirical_cdf

        samples = self.quantiles if part is None else self.quantiles_for(part)
        return empirical_cdf(samples, xs)


def _sampled_quantile(
    cache,
    victim_slot: int,
    scope_part: int | None,
    monitor: PriorityMonitor,
) -> float | None:
    """Estimate the victim's staleness quantile within its scope.

    Samples random slots; counts how many in-scope resident lines are
    *no staler* than the victim.  Returns ``None`` when too few
    in-scope lines were sampled to say anything.
    """
    victim_age = cache.staleness(victim_slot)
    part_of = cache.part_of
    num_lines = cache.num_lines
    rng = monitor.rng
    in_scope = 0
    younger_or_equal = 0
    attempts = monitor.sample_size * 4
    for _ in range(attempts):
        slot = rng.randrange(num_lines)
        if cache.array.addr_at(slot) is None:
            continue
        if scope_part is not None and part_of[slot] != scope_part:
            continue
        in_scope += 1
        if cache.staleness(slot) <= victim_age:
            younger_or_equal += 1
        if in_scope >= monitor.sample_size:
            break
    if in_scope < 8:
        return None
    return younger_or_equal / in_scope


def attach_eviction_monitor(
    cache, monitor: PriorityMonitor, per_partition: bool = True, stride: int = 1
):
    """Record an eviction-priority quantile for evictions.

    ``per_partition`` ranks the victim against its own partition's
    lines (the Fig 8 heat-map semantics); otherwise against the whole
    cache.  ``stride`` subsamples events (observe every N-th): each
    observation costs up to ``4 * sample_size`` probes, so long runs
    should not pay it per eviction.  Returns the installed hook.
    """
    state = {"count": 0}

    def hook(victim_slot: int, victim_part: int) -> None:
        state["count"] += 1
        if state["count"] % stride:
            return
        scope = victim_part if per_partition else None
        q = _sampled_quantile(cache, victim_slot, scope, monitor)
        if q is not None:
            monitor.observe(q, victim_part)

    cache.eviction_hook = hook
    return hook


def attach_demotion_monitor(cache, monitor: PriorityMonitor, stride: int = 1):
    """Record a demotion-priority quantile for Vantage demotions.

    ``cache`` must expose ``demotion_hook`` (VantageCache does);
    ``stride`` subsamples events as in :func:`attach_eviction_monitor`.
    """
    state = {"count": 0}

    def hook(victim_slot: int, victim_part: int) -> None:
        state["count"] += 1
        if state["count"] % stride:
            return
        q = _sampled_quantile(cache, victim_slot, victim_part, monitor)
        if q is not None:
            monitor.observe(q, victim_part)

    cache.demotion_hook = hook
    return hook


class SizeTimeSeries:
    """Samples target and actual partition sizes over time (Figure 8)."""

    def __init__(self, num_partitions: int):
        self.num_partitions = num_partitions
        self.times: list[int] = []
        self.targets: list[list[int]] = [[] for _ in range(num_partitions)]
        self.actuals: list[list[int]] = [[] for _ in range(num_partitions)]

    def sample(self, time: int, targets: Sequence[int], actuals: Sequence[int]) -> None:
        self.times.append(time)
        for p in range(self.num_partitions):
            self.targets[p].append(targets[p])
            self.actuals[p].append(actuals[p])

    def undershoot(self, part: int) -> int:
        """Largest amount by which ``part`` fell below target."""
        pairs = zip(self.targets[part], self.actuals[part])
        return max((t - a for t, a in pairs), default=0)

    def mean_abs_error(self, part: int) -> float:
        pairs = list(zip(self.targets[part], self.actuals[part]))
        if not pairs:
            return 0.0
        return sum(abs(t - a) for t, a in pairs) / len(pairs)
