"""State-overhead accounting for the Vantage controller (Section 4.3).

Reproduces the paper's hardware-cost arithmetic: partition-ID tag bits
plus per-partition controller registers, e.g. "on an 8 MB last-level
cache with 32 partitions, Vantage adds a 1.5 % state overhead overall".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

TIMESTAMP_BITS = 8
SIZE_REGISTER_BITS = 16  # tracks sizes for caches of up to 2^16 lines/bank
COUNTER_BITS = 8


@dataclass(frozen=True)
class VantageOverheads:
    """Bit counts for one Vantage deployment."""

    partition_id_bits: int
    extra_tag_bits_per_line: int
    register_bits_per_partition: int
    total_extra_bits: int
    baseline_bits: int

    @property
    def overhead_fraction(self) -> float:
        return self.total_extra_bits / self.baseline_bits


def partition_id_bits(num_partitions: int) -> int:
    """Tag bits for P partitions plus the unmanaged-region ID."""
    return math.ceil(math.log2(num_partitions + 1))


def register_bits_per_partition(threshold_entries: int = 8) -> int:
    """Controller state per partition (Fig 4).

    CurrentTS + SetpointTS (8 b each), AccessCounter + ActualSize +
    TargetSize (16 b each), CandsSeen + CandsDemoted (8 b each), and a
    ``threshold_entries``-entry lookup table of (16 b size, 8 b
    demotions) pairs.  With 8 entries this is 272 bits -- the paper
    rounds it to "about 256 bits".
    """
    fixed = 2 * TIMESTAMP_BITS + 3 * SIZE_REGISTER_BITS + 2 * COUNTER_BITS
    table = threshold_entries * (SIZE_REGISTER_BITS + COUNTER_BITS)
    return fixed + table


def vantage_overheads(
    cache_bytes: int = 8 * 1024 * 1024,
    line_bytes: int = 64,
    num_partitions: int = 32,
    num_banks: int = 4,
    nominal_tag_bits: int = 64,
    threshold_entries: int = 8,
) -> VantageOverheads:
    """Total Vantage state overhead versus an unpartitioned cache.

    The baseline counts data plus nominal tags (the paper's "if tags
    are nominally 64 bits and cache lines are 64 bytes" accounting);
    the baseline 8-bit LRU timestamp per tag is shared with Vantage and
    therefore not an overhead.
    """
    num_lines = cache_bytes // line_bytes
    pid_bits = partition_id_bits(num_partitions)
    tag_extra = num_lines * pid_bits
    regs = num_banks * num_partitions * register_bits_per_partition(threshold_entries)
    baseline = num_lines * (line_bytes * 8 + nominal_tag_bits)
    return VantageOverheads(
        partition_id_bits=pid_bits,
        extra_tag_bits_per_line=pid_bits,
        register_bits_per_partition=register_bits_per_partition(threshold_entries),
        total_extra_bits=tag_extra + regs,
        baseline_bits=baseline,
    )
