"""repro.telemetry: the hierarchical statistics spine.

Usage pattern (every layer follows it):

1. components keep plain counters (ints / lists) on themselves, as
   they always did -- hot paths never call into this package;
2. each component implements ``register_stats(group)``, adding
   pull-based leaves that read those counters;
3. the harness assembles one tree per simulation with
   :func:`system_tree` and snapshots it after the run.

Collection of the *optional* hot-loop counters (array walk lengths,
per-core stall cycles) is gated by :func:`enabled` -- a process-wide
flag initialised from ``REPRO_TELEMETRY`` (default on) and read once
at object construction, so disabling costs nothing per event.  The
``repro bench`` overhead guard measures exactly this on/off delta and
fails the build if collection costs more than its budget on the
pinned kernel.
"""

from __future__ import annotations

import os

from repro.telemetry.monitor import SampledMonitor
from repro.telemetry.tree import Distribution, IntervalSeries, Stat, StatGroup

_enabled = os.environ.get("REPRO_TELEMETRY", "1") != "0"


def enabled() -> bool:
    """Whether optional hot-loop counters should be collected."""
    return _enabled


def set_enabled(on: bool) -> None:
    """Toggle collection for objects constructed from now on."""
    global _enabled
    _enabled = bool(on)


def system_tree(cache=None, system=None, policy=None) -> StatGroup:
    """Assemble the canonical stats tree for one simulation.

    Top-level groups (the stable schema roots):

    - ``cache``: the partitioned cache front-end (per-partition
      hits/misses/evictions plus scheme-specific registers);
    - ``array``: the backing array (walks, candidates, relocations);
    - ``sim``: the CMP system (stall cycles, L1 filtering, epochs);
    - ``policy``: the allocation policy and its monitors.
    """
    root = StatGroup("root", "statistics for one simulation")
    if cache is not None:
        cache.register_stats(root.group("cache", "partitioned cache front-end"))
        array = getattr(cache, "array", None)
        if array is not None and hasattr(array, "register_stats"):
            array.register_stats(root.group("array", "backing cache array"))
    if system is not None and hasattr(system, "register_stats"):
        system.register_stats(root.group("sim", "CMP system"))
    if policy is not None and hasattr(policy, "register_stats"):
        policy.register_stats(root.group("policy", "allocation policy"))
    return root


__all__ = [
    "Distribution",
    "IntervalSeries",
    "SampledMonitor",
    "Stat",
    "StatGroup",
    "enabled",
    "set_enabled",
    "system_tree",
]
