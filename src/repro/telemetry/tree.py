"""Hierarchical statistics tree (the zsim-style stats spine).

Every layer of the simulation stack registers its counters into one
tree of :class:`StatGroup` nodes with stable dotted names
(``cache.hits``, ``array.walks``, ``sim.stall_cycles`` ...).  Leaves
are *pull-based*: a leaf holds a zero-argument callable that reads the
owner's live counter when the tree is snapshotted, so hot paths keep
incrementing plain Python ints and lists and pay nothing for being
observable.  :meth:`StatGroup.snapshot` walks the tree once, after the
simulation, and returns plain JSON-encodable data.

Three leaf flavours cover the paper's needs:

- plain stats (:meth:`StatGroup.stat`): scalars or per-partition /
  per-core vectors read from a callable;
- :class:`Distribution`: bounded-memory summaries (count / total /
  min / max / mean) of per-event values such as job wall times;
- :class:`IntervalSeries`: ``(time, value)`` samples for Figure-8
  style time series.

Names are restricted to ``[a-z0-9_]`` so dotted paths are unambiguous
and stable across PRs -- they are the public schema that analysis
code, golden tests, and the JSON export all share.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Iterator

_NAME_RE = re.compile(r"^[a-z0-9_]+$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"stat name {name!r} is invalid: use lowercase [a-z0-9_] only"
        )
    return name


class Stat:
    """A leaf: a named, described, lazily-read value."""

    __slots__ = ("name", "desc", "_fn")

    kind = "stat"

    def __init__(self, name: str, fn: Callable[[], Any], desc: str = ""):
        self.name = _check_name(name)
        self.desc = desc
        self._fn = fn

    def value(self):
        return self._fn()


class Distribution:
    """Bounded-memory summary of a stream of numeric observations."""

    __slots__ = ("name", "desc", "count", "total", "min", "max")

    kind = "distribution"

    def __init__(self, name: str, desc: str = ""):
        self.name = _check_name(name)
        self.desc = desc
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def record(self, x: float) -> None:
        self.count += 1
        self.total += x
        if self.min is None or x < self.min:
            self.min = x
        if self.max is None or x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def value(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class IntervalSeries:
    """Interval time series: ``(time, value)`` samples."""

    __slots__ = ("name", "desc", "times", "values")

    kind = "series"

    def __init__(self, name: str, desc: str = ""):
        self.name = _check_name(name)
        self.desc = desc
        self.times: list = []
        self.values: list = []

    def sample(self, time, value) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value(self) -> dict:
        return {"times": list(self.times), "values": list(self.values)}


class StatGroup:
    """One node of the stats tree: named children (groups and leaves).

    Children keep registration order, so snapshots are reproducible
    byte for byte -- which is what lets golden tests pin whole trees.
    """

    __slots__ = ("name", "desc", "_children")

    def __init__(self, name: str, desc: str = ""):
        self.name = _check_name(name)
        self.desc = desc
        self._children: dict[str, Any] = {}

    # -- construction ---------------------------------------------------

    def _add(self, child):
        existing = self._children.get(child.name)
        if existing is not None:
            raise ValueError(
                f"duplicate stat name {child.name!r} in group {self.name!r}"
            )
        self._children[child.name] = child
        return child

    def group(self, name: str, desc: str = "") -> "StatGroup":
        """Get or create a child group."""
        child = self._children.get(name)
        if child is not None:
            if not isinstance(child, StatGroup):
                raise ValueError(f"{name!r} is a leaf, not a group")
            return child
        return self._add(StatGroup(name, desc))

    def stat(self, name: str, fn: Callable[[], Any], desc: str = "") -> Stat:
        """Register a lazily-read leaf (scalar or vector)."""
        return self._add(Stat(name, fn, desc))

    def distribution(self, name: str, desc: str = "") -> Distribution:
        return self._add(Distribution(name, desc))

    def series(self, name: str, desc: str = "") -> IntervalSeries:
        return self._add(IntervalSeries(name, desc))

    # -- introspection --------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._children

    def __getitem__(self, name: str):
        return self._children[name]

    def children(self) -> Iterator:
        return iter(self._children.values())

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict:
        """The whole subtree as plain JSON-encodable data."""
        out: dict[str, Any] = {}
        for name, child in self._children.items():
            if isinstance(child, StatGroup):
                out[name] = child.snapshot()
            else:
                out[name] = child.value()
        return out

    def flatten(self, prefix: str = "") -> dict[str, Any]:
        """Dotted-name view: ``{"cache.hits": [...], ...}``."""
        out: dict[str, Any] = {}
        for name, child in self._children.items():
            path = f"{prefix}{name}"
            if isinstance(child, StatGroup):
                out.update(child.flatten(path + "."))
            else:
                out[path] = child.value()
        return out

    def schema(self, prefix: str = "") -> list[tuple[str, str, str]]:
        """``(dotted name, kind, description)`` for every leaf."""
        rows: list[tuple[str, str, str]] = []
        for name, child in self._children.items():
            path = f"{prefix}{name}"
            if isinstance(child, StatGroup):
                rows.extend(child.schema(path + "."))
            else:
                rows.append((path, child.kind, child.desc))
        return rows

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def dump(self, path) -> None:
        """Write the snapshot to ``path`` as JSON."""
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n")
