"""Telemetry interface for address-sampled monitors (UMONs).

Allocation policies used to duck-probe each monitor for private
attributes (``hasattr(m, "_sample_cache")``) to decide whether the
hot-path early exit could be used -- capability detection scattered at
the call site.  This module moves that contract behind one interface:

- every sampled monitor memoises its per-address sampling decision in
  ``_sample_cache`` (``addr -> set index`` for sampled addresses,
  ``addr -> None`` for the rest);
- :meth:`SampledMonitor.sample_filter` hands the caller a bound
  ``dict.get`` over that cache, so policies can skip non-sampled
  addresses without a method call and without knowing the monitor's
  internals;
- :meth:`SampledMonitor.observe` is the uniform reporting entry, and
  :meth:`SampledMonitor.register_stats` plugs the monitor into the
  stats tree.

``UMonitor`` and ``RRIPMonitor`` both implement this interface, so
UCP treats them identically.
"""

from __future__ import annotations


class SampledMonitor:
    """Base class for monitors that sample a subset of addresses.

    Subclasses must keep ``self._sample_cache`` up to date inside
    :meth:`access`: once an address has been seen, the cache maps it
    to its sampled-set index, or to ``None`` when the address falls
    outside the sampled sets (the common case).  An address missing
    from the cache means "not decided yet" -- callers must then call
    :meth:`observe` so the monitor can decide and memoise.
    """

    _sample_cache: dict

    def sample_filter(self):
        """A callable ``f(addr, default)`` for hot-path early exits.

        ``f(addr, -1)`` returns ``None`` for known non-sampled
        addresses (skip the access), the sampled-set index for known
        sampled ones, and the default for undecided addresses (the
        monitor must see the access either way).
        """
        return self._sample_cache.get

    def observe(self, addr: int) -> None:
        """Uniform reporting entry point (same as :meth:`access`)."""
        self.access(addr)

    def access(self, addr: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def register_stats(self, group) -> None:
        """Default telemetry: sampling-cache size only; subclasses add
        their hit counters and curves."""
        group.stat(
            "decided_addresses",
            lambda: len(self._sample_cache),
            "addresses whose sampling decision has been memoised",
        )
