"""The experiment daemon: an asyncio JSON-lines server.

One :class:`ExperimentDaemon` owns the
:class:`~repro.service.jobqueue.JobQueue`, the supervised
:class:`~repro.service.workers.WorkerPool` and the listening sockets
(a Unix socket always; a TCP endpoint too when ``REPRO_SERVICE_ADDR``
or ``ServiceConfig.tcp`` names one).  Each client connection is an
independent coroutine speaking :mod:`repro.service.protocol`; a
protocol error on one line is answered with an ``error`` line and the
connection keeps serving, so one confused client cannot take the
daemon down.

Results flow: ``submit`` first consults the on-disk results cache
(the same :func:`~repro.harness.results_cache.job_key` contract as
the batch harness -- a daemon restart still reuses every finished
simulation), then coalesces onto an identical queued/running entry,
then enqueues.  Completed outcomes are persisted by the pool through
:func:`~repro.harness.parallel.record_outcome`, so the daemon and
``run_jobs`` share one cache.

Telemetry: :meth:`ExperimentDaemon.register_stats` publishes the
service group (queue depth, in-flight, dedupe/cache hits, retries,
restarts, per-job wall-time distribution, worker trace-store
counters) in the PR-2 stats-tree schema; the ``stats`` op snapshots
it in the exact shape ``repro run-mix --stats-json`` writes.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import traces
from repro.harness import results_cache
from repro.harness.parallel import SimJob, default_workers
from repro.service import protocol
from repro.service.jobqueue import JobQueue, QueueClosed, QueueFull
from repro.service.workers import WorkerPool
from repro.telemetry import StatGroup


@dataclass
class ServiceConfig:
    """Everything the daemon needs to come up."""

    socket_path: Path = field(default_factory=protocol.default_socket)
    tcp: tuple[str, int] | None = field(default_factory=protocol.tcp_addr)
    workers: int = field(default_factory=default_workers)
    queue_size: int = 256
    job_timeout: float | None = None
    max_retries: int = 2
    use_cache: bool = True


class ExperimentDaemon:
    """Resident multi-client front-end over the simulation harness."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.queue = JobQueue(maxsize=self.config.queue_size)
        self.pool = WorkerPool(
            self.queue,
            workers=self.config.workers,
            job_timeout=self.config.job_timeout,
            max_retries=self.config.max_retries,
            use_cache=self.config.use_cache,
        )
        self.started_at = time.monotonic()
        self._servers: list[asyncio.base_events.Server] = []
        self._shutdown = asyncio.Event()
        # Shared-memory trace fabric (REPRO_TRACE_SHM): the daemon is
        # the publishing owner; resident workers only ever attach.
        # The lock serialises publish work (the store and segment pool
        # are not thread-safe); the memo keeps resubmitted mixes from
        # re-walking their chunk prefixes.
        self._publish_lock = asyncio.Lock()
        self._published_traces: dict[str, int] = {}
        # Telemetry counters.
        self.connections_total = 0
        self.connections_open = 0
        self.cache_hits = 0
        self.protocol_errors = 0
        self.batches = 0
        self.batch_jobs = 0

    # -- telemetry ------------------------------------------------------

    def register_stats(self, group: StatGroup) -> None:
        """Register the service telemetry group (PR-2 schema)."""
        queue = self.queue
        pool = self.pool
        group.stat("uptime_s", lambda: time.monotonic() - self.started_at, "seconds since daemon start")
        group.stat("connections_total", lambda: self.connections_total, "client connections accepted")
        group.stat("connections_open", lambda: self.connections_open, "client connections currently open")
        group.stat("protocol_errors", lambda: self.protocol_errors, "malformed request lines answered with errors")
        q = group.group("queue", "priority job queue")
        q.stat("depth", queue.depth, "jobs waiting to run")
        q.stat("in_flight", queue.in_flight, "jobs running on workers")
        q.stat("submitted", lambda: queue.submitted, "unique jobs accepted")
        q.stat("dedupe_hits", lambda: queue.dedupe_hits, "submissions coalesced onto an identical active job")
        q.stat("cache_hits", lambda: self.cache_hits, "submissions served from the on-disk results cache")
        q.stat("completed", lambda: queue.completed, "jobs finished successfully")
        q.stat("failed", lambda: queue.failed, "jobs that exhausted retries or raised")
        q.stat("cancelled", lambda: queue.cancelled, "jobs cancelled before running")
        q.stat("rejected", lambda: queue.rejected, "submissions refused by backpressure (queue full)")
        q.stat("batches", lambda: self.batches, "submit_batch requests accepted")
        q.stat("batch_jobs", lambda: self.batch_jobs, "job slots carried by submit_batch requests")
        w = group.group("workers", "supervised persistent worker pool")
        w.stat("configured", lambda: pool.workers, "worker slots")
        w.stat("alive", pool.alive, "worker processes currently alive")
        w.stat("restarts", lambda: pool.restarts, "workers respawned after a crash or timeout")
        w.stat("retries", lambda: pool.retries, "jobs re-queued after their worker died")
        w.stat("timeouts", lambda: pool.timeouts, "jobs killed by the per-job timeout")
        w.stat("job_wall_time", pool.job_wall_time.value, "per-job wall time distribution, seconds")
        w.stat("trace_store", pool.trace_counters, "workers' trace-chunk store counters, summed")

    def stats_tree(self) -> StatGroup:
        """The daemon's stats tree (``service`` + harness groups)."""
        from repro.harness import parallel

        root = StatGroup("root", "experiment daemon statistics")
        self.register_stats(root.group("service", "resident experiment service"))
        parallel.register_stats(
            root.group("harness", "daemon-process harness counters")
        )
        return root

    # -- request handlers -----------------------------------------------

    def _summary(self) -> dict:
        return {
            "op": "status",
            "uptime_s": time.monotonic() - self.started_at,
            "queue_depth": self.queue.depth(),
            "in_flight": self.queue.in_flight(),
            "workers_alive": self.pool.alive(),
            "submitted": self.queue.submitted,
            "dedupe_hits": self.queue.dedupe_hits,
            "cache_hits": self.cache_hits,
            "completed": self.queue.completed,
            "failed": self.queue.failed,
        }

    async def _reply(self, writer: asyncio.StreamWriter, msg: dict) -> None:
        writer.write(protocol.encode(msg))
        await writer.drain()

    async def _admit(self, job: SimJob, priority: int):
        """Cache-check, trace-publish and enqueue one job.

        Returns ``(ticket, entry, cached_outcome)``; exactly one of
        ``entry`` / ``cached_outcome`` is set on success, both are
        ``None`` when the ticket is an error dict instead.
        """
        if self.config.use_cache:
            key = results_cache.job_key(job)
            cached = results_cache.load(key)
            if cached is not None:
                self.cache_hits += 1
                ticket = {
                    "id": 0,
                    "key": key,
                    "state": protocol.DONE,
                    "deduped": False,
                    "cached": True,
                }
                return ticket, None, cached
        await self._publish_job_traces(job)
        try:
            entry, deduped = self.queue.submit(job, priority=priority)
        except QueueFull:
            error = protocol.error(
                "queue_full", depth=self.queue.depth(),
                maxsize=self.queue.maxsize,
            )
            return error, None, None
        except QueueClosed:
            return protocol.error("shutting_down"), None, None
        ticket = {
            "id": entry.id,
            "key": entry.key,
            "state": entry.state,
            "deduped": deduped,
            "cached": False,
        }
        return ticket, entry, None

    async def _handle_submit(self, msg: dict, writer) -> None:
        job = protocol.unpack(msg["job"]) if "job" in msg else None
        if not isinstance(job, SimJob):
            await self._reply(
                writer, protocol.error("submit carries no SimJob payload")
            )
            return
        wait = bool(msg.get("wait", True))
        priority = int(msg.get("priority", 0))
        ticket, entry, cached = await self._admit(job, priority)
        if entry is None and cached is None:
            await self._reply(writer, ticket)  # an error dict
            return
        await self._reply(writer, {"op": "submitted", **ticket})
        if not wait:
            return
        if cached is not None:
            await self._reply(
                writer,
                {"op": "result", "id": 0, "outcome": protocol.pack(cached)},
            )
            return
        try:
            outcome = await asyncio.shield(entry.future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            await self._reply(
                writer, protocol.error(str(exc), id=entry.id, state=entry.state)
            )
            return
        await self._reply(
            writer,
            {
                "op": "result",
                "id": entry.id,
                "outcome": protocol.pack(outcome),
            },
        )

    async def _handle_submit_batch(self, msg: dict, writer) -> None:
        """One request, a whole sweep: admit every job, then stream
        per-slot ``result`` lines as each finishes (cache hits first,
        completion order after that -- ``index`` maps a line back to
        its slot), ending with a ``batch_done`` summary."""
        packed = msg.get("jobs")
        if not isinstance(packed, list) or not packed:
            await self._reply(
                writer, protocol.error("submit_batch carries no job list")
            )
            return
        jobs = []
        for i, blob in enumerate(packed):
            try:
                job = protocol.unpack(blob)
            except protocol.ProtocolError:
                job = None
            if not isinstance(job, SimJob):
                await self._reply(
                    writer,
                    protocol.error(f"submit_batch slot {i} is not a SimJob"),
                )
                return
            jobs.append(job)
        wait = bool(msg.get("wait", True))
        priority = int(msg.get("priority", 0))
        self.batches += 1
        self.batch_jobs += len(jobs)
        ids: list[int] = []
        cached_flags: list[bool] = []
        deduped_flags: list[bool] = []
        ready: dict[int, object] = {}
        errors: dict[int, str] = {}
        entries: dict[int, object] = {}
        for i, job in enumerate(jobs):
            ticket, entry, cached = await self._admit(job, priority)
            if entry is None and cached is None:
                errors[i] = ticket.get("error", "rejected")
                ids.append(0)
                cached_flags.append(False)
                deduped_flags.append(False)
                continue
            ids.append(ticket["id"])
            cached_flags.append(ticket["cached"])
            deduped_flags.append(ticket["deduped"])
            if cached is not None:
                ready[i] = cached
            else:
                entries[i] = entry
        await self._reply(
            writer,
            {
                "op": "batch_submitted",
                "count": len(jobs),
                "ids": ids,
                "cached": cached_flags,
                "deduped": deduped_flags,
            },
        )
        if not wait:
            return
        completed = failed = 0
        for i in sorted(ready):
            completed += 1
            await self._reply(
                writer,
                {
                    "op": "result",
                    "index": i,
                    "id": ids[i],
                    "outcome": protocol.pack(ready[i]),
                },
            )
        for i in sorted(errors):
            failed += 1
            await self._reply(
                writer,
                {"op": "result", "index": i, "id": 0, "error": errors[i]},
            )
        # Two batch slots holding identical jobs share one queue entry
        # (and so one future); shield each slot separately so a closed
        # connection never cancels the underlying simulation.
        shields = {i: asyncio.shield(e.future) for i, e in entries.items()}
        remaining = dict(entries)
        while remaining:
            await asyncio.wait(
                set(shields[i] for i in remaining),
                return_when=asyncio.FIRST_COMPLETED,
            )
            for i in [i for i, e in remaining.items() if e.future.done()]:
                entry = remaining.pop(i)
                try:
                    outcome = entry.future.result()
                except Exception as exc:
                    failed += 1
                    await self._reply(
                        writer,
                        {
                            "op": "result",
                            "index": i,
                            "id": entry.id,
                            "error": str(exc),
                        },
                    )
                else:
                    completed += 1
                    await self._reply(
                        writer,
                        {
                            "op": "result",
                            "index": i,
                            "id": entry.id,
                            "outcome": protocol.pack(outcome),
                        },
                    )
        await self._reply(
            writer,
            {"op": "batch_done", "completed": completed, "failed": failed},
        )

    async def _publish_job_traces(self, job: SimJob) -> None:
        """Publish ``job``'s traces to the shared fabric before it can
        reach a worker (no-op unless ``REPRO_TRACE_SHM=1``).

        Runs in the default executor so a cold compile never stalls
        the event loop; other clients keep submitting and watching
        while the fabric warms up.  Best-effort: a failed publish just
        means workers fall back to their private layers.
        """
        if not traces.shm_enabled():
            return
        loop = asyncio.get_running_loop()
        async with self._publish_lock:
            await loop.run_in_executor(None, self._publish_job_traces_sync, job)

    def _publish_job_traces_sync(self, job: SimJob) -> None:
        store = traces.get_store()
        try:
            factories = job.mix.trace_factories(job.seed)
        except Exception:
            return
        for spec in factories:
            if not isinstance(spec, traces.TraceSpec):
                continue
            key = store.key_of(spec)
            if self._published_traces.get(key, -1) >= job.instructions:
                continue
            try:
                store.publish_prefix(spec, job.instructions)
            except Exception:
                continue
            if len(self._published_traces) >= 4096:
                self._published_traces.clear()
            self._published_traces[key] = job.instructions

    async def _handle_watch(self, msg: dict, writer) -> None:
        entry = self.queue.get(int(msg.get("id", -1)))
        if entry is None:
            await self._reply(writer, protocol.error("unknown_job"))
            return
        events: asyncio.Queue = asyncio.Queue()
        entry.watchers.append(events)
        try:
            event = entry.describe()
            await self._reply(writer, {"op": "event", **event})
            while event["state"] not in protocol.TERMINAL_STATES:
                event = await events.get()
                await self._reply(writer, {"op": "event", **event})
        finally:
            entry.watchers.remove(events)

    async def _handle_one(self, msg: dict, writer) -> bool:
        """Dispatch one request; returns False to end the connection."""
        op = msg["op"]
        if op == "submit":
            await self._handle_submit(msg, writer)
        elif op == "submit_batch":
            await self._handle_submit_batch(msg, writer)
        elif op == "status":
            if "id" in msg:
                entry = self.queue.get(int(msg["id"]))
                if entry is None:
                    await self._reply(writer, protocol.error("unknown_job"))
                else:
                    await self._reply(
                        writer, {"op": "status", **entry.describe()}
                    )
            else:
                await self._reply(writer, self._summary())
        elif op == "watch":
            await self._handle_watch(msg, writer)
        elif op == "cancel":
            try:
                entry = self.queue.cancel(int(msg.get("id", -1)))
            except KeyError:
                await self._reply(writer, protocol.error("unknown_job"))
            except ValueError as exc:
                await self._reply(writer, protocol.error(str(exc)))
            else:
                await self._reply(writer, {"op": "ok", "id": entry.id})
        elif op == "stats":
            await self._reply(
                writer, {"op": "stats", "tree": self.stats_tree().snapshot()}
            )
        elif op == "ping":
            await self._reply(writer, {"op": "pong"})
        elif op == "shutdown":
            await self._reply(writer, {"op": "ok"})
            self.request_shutdown()
            return False
        else:
            self.protocol_errors += 1
            await self._reply(writer, protocol.error(f"unknown op {op!r}"))
        return True

    async def _handle_client(self, reader, writer) -> None:
        self.connections_total += 1
        self.connections_open += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(
                        writer, protocol.error("line exceeds the protocol cap")
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = protocol.decode(line)
                except protocol.VersionMismatch as exc:
                    # Structured: both versions, so whichever peer sees
                    # the error knows exactly who needs upgrading.
                    self.protocol_errors += 1
                    await self._reply(
                        writer,
                        protocol.error(
                            str(exc),
                            code="version_mismatch",
                            client_version=exc.peer_version,
                            server_version=exc.our_version,
                        ),
                    )
                    continue
                except protocol.ProtocolError as exc:
                    self.protocol_errors += 1
                    await self._reply(writer, protocol.error(str(exc)))
                    continue
                if not await self._handle_one(msg, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.connections_open -= 1
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # -- lifecycle ------------------------------------------------------

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def start(self) -> None:
        """Bind sockets and spawn the worker pool (no blocking wait)."""
        if traces.shm_enabled():
            # Reclaim segments orphaned by crashed runs before workers
            # fork; live publishers' segments are never touched.
            traces.SharedChunkPool.scavenge()
        await self.pool.start()
        path = self.config.socket_path
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            path.unlink()
        self._servers.append(
            await asyncio.start_unix_server(
                self._handle_client, path=str(path),
                limit=protocol.MAX_LINE_BYTES,
            )
        )
        if self.config.tcp is not None:
            host, port = self.config.tcp
            self._servers.append(
                await asyncio.start_server(
                    self._handle_client, host=host, port=port,
                    limit=protocol.MAX_LINE_BYTES,
                )
            )

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        await self.pool.stop()
        if traces.shm_enabled() or self._published_traces:
            # Workers are gone; release the fabric.  Unlinks every
            # segment this daemon published and closes idle mappings
            # (segments other owners published stay untouched).  Also
            # checked against the publish memo, not just the env flag:
            # segments published earlier must be unlinked even if the
            # flag was flipped off while the daemon ran.
            traces.get_pool().close(unlink=True)
            self._published_traces.clear()
        with contextlib.suppress(OSError):
            self.config.socket_path.unlink()

    async def serve(self, install_signals: bool = True) -> None:
        """Run until ``shutdown`` (op, SIGTERM or SIGINT)."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(signum, self.request_shutdown)
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()


def serve(config: ServiceConfig | None = None) -> None:
    """Blocking entry point: run a daemon in this process."""
    asyncio.run(ExperimentDaemon(config).serve())
