"""Supervised persistent simulation workers.

The batch harness tears its ``ProcessPoolExecutor`` down after every
sweep; the daemon instead keeps a fixed set of worker *processes*
resident, so each worker's in-process trace-chunk LRU and fused
kernels stay warm across requests from every client.

Each worker is one forked process running :func:`_worker_main`: a
loop that receives a pickled :class:`~repro.harness.parallel.SimJob`
over a duplex pipe, runs the exact
:func:`~repro.harness.parallel.execute_job` code path the batch
harness and a serial ``run_mix`` use, and sends the outcome back
(with its trace-store counters piggybacked for daemon telemetry).

Supervision lives in :class:`WorkerPool`: one asyncio task per worker
slot pulls entries off the :class:`~repro.service.jobqueue.JobQueue`
and drives its worker through a thread (pipe reads block).  Failure
is contained per job:

- a worker that *crashes* (SIGKILL, OOM, segfault) quarantines only
  itself -- the supervisor respawns the process and re-queues the
  entry at the front of its priority class, up to
  ``max_retries`` times, while every other slot keeps serving;
- a job that *times out* kills the worker (the only way to stop a
  runaway fork) and is retried under the same bound;
- a job that raises a Python exception is a deterministic failure:
  it is reported to the client without retry.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import signal
import time

from repro.harness.parallel import execute_job, record_outcome
from repro.telemetry import Distribution


class WorkerCrashed(Exception):
    """The worker process died before returning a result."""


class JobTimeout(Exception):
    """The job exceeded the daemon's per-job wall-time budget."""


def _worker_main(conn) -> None:
    """Worker-process loop: jobs in, outcomes out, until ``stop``."""
    # The parent owns interrupt handling (same contract as the batch
    # pool's initializer): a terminal Ctrl-C must not spray worker
    # tracebacks.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):
        pass
    from repro import traces

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        job = msg[1]
        try:
            outcome = execute_job(job)
        except Exception as exc:  # deterministic job failure
            reply = ("err", f"{type(exc).__name__}: {exc}")
        else:
            reply = ("ok", outcome)
        try:
            conn.send((*reply, traces.get_store().counters()))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class WorkerProcess:
    """One resident worker and its parent-side pipe end."""

    def __init__(self):
        ctx = multiprocessing.get_context()
        self._conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main, args=(child,), daemon=True
        )
        self.proc.start()
        child.close()
        #: Latest trace-store counters reported by this worker.
        self.trace_counters: dict[str, int] = {}
        self.jobs_done = 0

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    def run(self, job, timeout: float | None):
        """Execute ``job`` on this worker (blocking; call in a thread).

        Raises :class:`WorkerCrashed` if the process dies and
        :class:`JobTimeout` if ``timeout`` seconds elapse first; the
        caller decides whether to retry and must discard this worker
        after either.
        """
        try:
            self._conn.send(("job", job))
        except (BrokenPipeError, OSError):
            raise WorkerCrashed(f"worker {self.pid} pipe is closed") from None
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            step = 0.5
            if deadline is not None:
                step = min(step, deadline - time.monotonic())
                if step <= 0:
                    raise JobTimeout(
                        f"job exceeded {timeout:.1f}s on worker {self.pid}"
                    )
            # ``poll`` also wakes on EOF, so a SIGKILLed worker is
            # noticed immediately, not at the timeout.
            if self._conn.poll(max(step, 0.01)):
                break
            if not self.proc.is_alive() and not self._conn.poll(0.01):
                raise WorkerCrashed(f"worker {self.pid} died")
        try:
            msg = self._conn.recv()
        except (EOFError, OSError):
            raise WorkerCrashed(f"worker {self.pid} died mid-reply") from None
        status, payload, counters = msg
        self.trace_counters = counters
        self.jobs_done += 1
        if status == "err":
            raise RuntimeError(payload)
        return payload

    def stop(self, grace: float = 2.0) -> None:
        """Ask the worker to exit; escalate to SIGKILL after ``grace``."""
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(grace)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(grace)
        self._conn.close()

    def kill(self) -> None:
        """Hard-stop a runaway or crashed worker."""
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(2.0)
        self._conn.close()


class WorkerPool:
    """Asyncio supervisor over a fixed set of worker slots."""

    def __init__(
        self,
        queue,
        workers: int,
        job_timeout: float | None = None,
        max_retries: int = 2,
        use_cache: bool = True,
    ):
        if workers < 1:
            raise ValueError("worker count must be positive")
        self.queue = queue
        self.workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.use_cache = use_cache
        self._slots: dict[int, WorkerProcess | None] = {}
        self._tasks: list[asyncio.Task] = []
        self._stopping = False
        # Telemetry (pulled by the daemon's service stats group).
        self.restarts = 0
        self.retries = 0
        self.timeouts = 0
        self.job_wall_time = Distribution(
            "job_wall_time", "per-job wall time as measured by workers"
        )

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for slot in range(self.workers):
            self._slots[slot] = await loop.run_in_executor(None, WorkerProcess)
            self._tasks.append(
                asyncio.create_task(
                    self._supervise(slot), name=f"worker-slot-{slot}"
                )
            )

    def trace_counters(self) -> dict[str, int]:
        """Workers' trace-store counters, summed across slots."""
        total: dict[str, int] = {}
        for worker in self._slots.values():
            if worker is None:
                continue
            for name, value in worker.trace_counters.items():
                total[name] = total.get(name, 0) + value
        return total

    def alive(self) -> int:
        return sum(
            1
            for w in self._slots.values()
            if w is not None and w.proc.is_alive()
        )

    async def _respawn(self, slot: int) -> WorkerProcess:
        loop = asyncio.get_running_loop()
        old = self._slots[slot]
        if old is not None:
            await loop.run_in_executor(None, old.kill)
        self.restarts += 1
        worker = await loop.run_in_executor(None, WorkerProcess)
        self._slots[slot] = worker
        return worker

    async def _supervise(self, slot: int) -> None:
        from repro.service.jobqueue import QueueClosed

        loop = asyncio.get_running_loop()
        worker = self._slots[slot]
        while not self._stopping:
            try:
                entry = await self.queue.next()
            except QueueClosed:
                break
            self.queue.mark_running(entry)
            try:
                outcome = await loop.run_in_executor(
                    None, worker.run, entry.job, self.job_timeout
                )
            except (WorkerCrashed, JobTimeout) as exc:
                if isinstance(exc, JobTimeout):
                    self.timeouts += 1
                if self._stopping:
                    self.queue.mark_failed(entry, str(exc))
                    break
                worker = await self._respawn(slot)
                if entry.retries < self.max_retries:
                    self.retries += 1
                    self.queue.requeue(entry)
                else:
                    self.queue.mark_failed(
                        entry,
                        f"{exc} (gave up after {entry.retries} retries)",
                    )
            except RuntimeError as exc:
                # The job itself raised in the worker: deterministic,
                # not retried; the worker is healthy and kept.
                self.queue.mark_failed(entry, str(exc))
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Supervisor-side surprise (bad reply shape, pickle
                # trouble): fail the job but keep the slot serving.
                self.queue.mark_failed(entry, f"internal error: {exc!r}")
                worker = await self._respawn(slot)
            else:
                if outcome.wall_time_s is not None:
                    self.job_wall_time.record(outcome.wall_time_s)
                record_outcome(entry.key, outcome, use_cache=self.use_cache)
                self.queue.mark_done(entry, outcome)

    async def stop(self) -> None:
        self._stopping = True
        self.queue.close()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self.queue.fail_running("daemon shutting down")
        loop = asyncio.get_running_loop()
        for slot, worker in self._slots.items():
            if worker is not None:
                await loop.run_in_executor(None, worker.stop)
                self._slots[slot] = None
