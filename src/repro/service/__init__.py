"""repro.service: the resident experiment daemon.

The batch harness (:mod:`repro.harness.parallel`) builds a worker
pool per sweep and dies with its caller; this package keeps the
simulator resident and multi-client, the way the related cache-QoS
work assumes a shared service arbitrating partitioning studies:

- :mod:`~repro.service.protocol`: versioned JSON-lines wire format
  (``submit`` / ``status`` / ``watch`` / ``cancel`` / ``stats`` /
  ``shutdown``) over a Unix socket, TCP via ``REPRO_SERVICE_ADDR``;
- :mod:`~repro.service.jobqueue`: bounded priority queue that dedupes
  submissions through the harness's content-addressed job keys;
- :mod:`~repro.service.workers`: supervised persistent worker
  processes (warm trace store and fused kernels, per-job timeouts,
  bounded crash retries);
- :mod:`~repro.service.server`: the asyncio daemon;
- :mod:`~repro.service.client`: the synchronous
  :class:`~repro.service.client.ServiceClient`.

Guarantee carried over from the harness: an outcome returned by the
daemon is bitwise-identical to a serial ``run_mix`` with the same
inputs (``tests/service/`` asserts it), because workers run the
exact same :func:`~repro.harness.parallel.execute_job` path.
"""

from repro.service.client import (
    BatchResult,
    ConnectionLost,
    ServiceClient,
    ServiceError,
)
from repro.service.jobqueue import JobEntry, JobQueue, QueueClosed, QueueFull
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    VersionMismatch,
    parse_addr,
)
from repro.service.server import ExperimentDaemon, ServiceConfig, serve
from repro.service.workers import JobTimeout, WorkerCrashed, WorkerPool

__all__ = [
    "BatchResult",
    "ConnectionLost",
    "ExperimentDaemon",
    "JobEntry",
    "JobQueue",
    "JobTimeout",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueClosed",
    "QueueFull",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "VersionMismatch",
    "WorkerCrashed",
    "WorkerPool",
    "parse_addr",
    "serve",
]
