"""Synchronous client for the experiment daemon.

:class:`ServiceClient` wraps one socket connection (Unix by default,
TCP when the daemon published ``REPRO_SERVICE_ADDR``) and exposes the
protocol as plain methods.  It is deliberately synchronous: sweep
scripts, the CLI and tests call it like a function; concurrency comes
from opening one client per thread or process, which is exactly the
multi-client scenario the daemon exists to arbitrate.

Example::

    from repro.harness import SimJob
    from repro.service import ServiceClient

    with ServiceClient() as svc:
        outcome = svc.submit(SimJob(mix, "vantage-z4/52", config, 100_000))
        print(outcome.result.throughput)
"""

from __future__ import annotations

import socket
import time
from pathlib import Path

from repro.service import protocol


class ServiceError(Exception):
    """The daemon answered with an ``error`` line."""


class ServiceClient:
    """One connection to a running experiment daemon."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        tcp: tuple[str, int] | None = None,
        timeout: float | None = None,
    ):
        self.socket_path = Path(socket_path) if socket_path else None
        self.tcp = tcp
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._fh = None

    # -- connection -----------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        tcp = self.tcp if self.tcp is not None else (
            None if self.socket_path is not None else protocol.tcp_addr()
        )
        if tcp is not None:
            sock = socket.create_connection(tcp, timeout=self.timeout)
        else:
            path = self.socket_path or protocol.default_socket()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(str(path))
        self._sock = sock
        self._fh = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire helpers ---------------------------------------------------

    def _send(self, msg: dict) -> None:
        self.connect()
        self._fh.write(protocol.encode(msg))
        self._fh.flush()

    def _recv(self) -> dict:
        line = self._fh.readline(protocol.MAX_LINE_BYTES + 2)
        if not line:
            raise ServiceError("daemon closed the connection")
        return protocol.decode(line)

    def _request(self, msg: dict, expect: str) -> dict:
        """Send one request; return the first non-error reply of kind
        ``expect`` (raises :class:`ServiceError` on ``error``)."""
        self._send(msg)
        reply = self._recv()
        if reply["op"] == "error":
            raise ServiceError(reply.get("error", "unknown error"))
        if reply["op"] != expect:
            raise ServiceError(
                f"expected {expect!r} reply, got {reply['op']!r}"
            )
        return reply

    # -- operations -----------------------------------------------------

    def ping(self) -> bool:
        self._request({"op": "ping"}, "pong")
        return True

    def submit(
        self,
        job,
        priority: int = 0,
        wait: bool = True,
    ):
        """Run ``job`` on the daemon.

        With ``wait=True`` (default) blocks until the simulation
        finishes and returns its
        :class:`~repro.harness.parallel.SimOutcome` -- bitwise-equal
        to a serial ``run_mix`` with the same inputs.  With
        ``wait=False`` returns the submission ticket dict (``id``,
        ``state``, ``deduped``, ``cached``) immediately.
        """
        ticket = self._request(
            {
                "op": "submit",
                "job": protocol.pack(job),
                "priority": priority,
                "wait": wait,
            },
            "submitted",
        )
        if not wait:
            return ticket
        reply = self._recv()
        if reply["op"] == "error":
            raise ServiceError(reply.get("error", "job failed"))
        if reply["op"] != "result":
            raise ServiceError(f"expected 'result', got {reply['op']!r}")
        return protocol.unpack(reply["outcome"])

    def status(self, job_id: int | None = None) -> dict:
        msg: dict = {"op": "status"}
        if job_id is not None:
            msg["id"] = job_id
        return self._request(msg, "status")

    def watch(self, job_id: int, timeout: float | None = None):
        """Yield state-transition events until the job is terminal."""
        self._send({"op": "watch", "id": job_id})
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"watch({job_id}) timed out")
            event = self._recv()
            if event["op"] == "error":
                raise ServiceError(event.get("error", "watch failed"))
            yield event
            if event.get("state") in protocol.TERMINAL_STATES:
                return

    def cancel(self, job_id: int) -> dict:
        return self._request({"op": "cancel", "id": job_id}, "ok")

    def stats(self) -> dict:
        """The daemon's stats-tree snapshot (PR-2 JSON schema)."""
        return self._request({"op": "stats"}, "stats")["tree"]

    def shutdown(self) -> None:
        """Stop the daemon (acknowledged before it exits)."""
        self._request({"op": "shutdown"}, "ok")
        self.close()
