"""Synchronous client for the experiment daemon.

:class:`ServiceClient` wraps one socket connection (Unix by default,
TCP when the daemon published ``REPRO_SERVICE_ADDR``) and exposes the
protocol as plain methods.  It is deliberately synchronous: sweep
scripts, the CLI and tests call it like a function; concurrency comes
from opening one client per thread or process, which is exactly the
multi-client scenario the daemon exists to arbitrate.

Transient-failure discipline: ``connect`` and ``submit`` retry a
bounded number of times with exponential backoff plus jitter when the
daemon refuses, resets or drops the connection -- a daemon restart
(or a federation gateway failing a node over) looks like a short blip
instead of a hard failure.  Retrying a submit is safe because
submission is idempotent: the daemon dedupes identical jobs through
their content key and serves finished ones from the results cache.
Streaming calls (``watch``) are never retried -- a half-consumed
stream is not replayable.

Example::

    from repro.harness import SimJob
    from repro.service import ServiceClient

    with ServiceClient() as svc:
        outcome = svc.submit(SimJob(mix, "vantage-z4/52", config, 100_000))
        print(outcome.result.throughput)
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.service import protocol


class ServiceError(Exception):
    """The daemon answered with an ``error`` line."""


class ConnectionLost(ServiceError):
    """The daemon dropped the connection mid-exchange (ECONNRESET or
    a clean close) -- retryable for idempotent requests."""


#: Errors that mean "the daemon is (re)starting or just died" --
#: worth retrying.  ``FileNotFoundError`` covers a Unix socket path
#: that a restarting daemon has not re-created yet.
RETRYABLE_CONNECT = (
    ConnectionRefusedError,
    ConnectionResetError,
    FileNotFoundError,
)
RETRYABLE_REQUEST = (
    ConnectionResetError,
    BrokenPipeError,
    ConnectionLost,
) + RETRYABLE_CONNECT


@dataclass
class BatchResult:
    """Everything a ``submit_batch`` round-trip produced, slot-aligned
    with the submitted job list."""

    outcomes: list = field(default_factory=list)
    ids: list = field(default_factory=list)
    #: Slot served straight from the daemon's results cache.
    cached: list = field(default_factory=list)
    #: Slot coalesced onto an already-active identical job.
    deduped: list = field(default_factory=list)
    #: Per-slot failure message (``None`` on success).
    errors: list = field(default_factory=list)

    def raise_on_error(self) -> "BatchResult":
        bad = [
            (i, e) for i, e in enumerate(self.errors) if e is not None
        ]
        if bad:
            head = "; ".join(f"slot {i}: {e}" for i, e in bad[:3])
            raise ServiceError(
                f"{len(bad)} of {len(self.errors)} batch jobs failed ({head})"
            )
        return self


class ServiceClient:
    """One connection to a running experiment daemon."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        tcp: tuple[str, int] | None = None,
        timeout: float | None = None,
        retries: int = 4,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
    ):
        self.socket_path = Path(socket_path) if socket_path else None
        self.tcp = tcp
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_backoff = max_backoff
        #: Connection attempts made over this client's lifetime
        #: (observable by tests and by retry telemetry).
        self.connect_attempts = 0
        self._sock: socket.socket | None = None
        self._fh = None

    # -- connection -----------------------------------------------------

    def _sleep_before_retry(self, attempt: int) -> None:
        delay = min(self.backoff * (2 ** attempt), self.max_backoff)
        # Full jitter: concurrent clients of a restarting daemon must
        # not reconnect in lockstep.
        time.sleep(delay * (0.5 + random.random()))

    def _connect_once(self) -> None:
        tcp = self.tcp if self.tcp is not None else (
            None if self.socket_path is not None else protocol.tcp_addr()
        )
        self.connect_attempts += 1
        if tcp is not None:
            sock = socket.create_connection(tcp, timeout=self.timeout)
        else:
            path = self.socket_path or protocol.default_socket()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(str(path))
        self._sock = sock
        self._fh = sock.makefile("rwb")

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        for attempt in range(self.retries + 1):
            try:
                self._connect_once()
                return self
            except RETRYABLE_CONNECT:
                if attempt >= self.retries:
                    raise
                self._sleep_before_retry(attempt)
        return self  # pragma: no cover -- loop always returns/raises

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire helpers ---------------------------------------------------

    def _send(self, msg: dict) -> None:
        self.connect()
        self._fh.write(protocol.encode(msg))
        self._fh.flush()

    def _recv(self) -> dict:
        line = self._fh.readline(protocol.MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionLost("daemon closed the connection")
        try:
            return protocol.decode(line)
        except protocol.VersionMismatch as exc:
            # The *daemon* speaks a different version than we do.
            raise ServiceError(
                f"daemon speaks protocol v{exc.peer_version!r}, this "
                f"client speaks v{exc.our_version}; upgrade one side"
            ) from None

    @staticmethod
    def _error_from(reply: dict) -> ServiceError:
        if reply.get("code") == "version_mismatch":
            return ServiceError(
                f"daemon speaks protocol v{reply.get('server_version')!r} "
                f"but this client sent v{reply.get('client_version')!r}; "
                f"upgrade one side"
            )
        return ServiceError(reply.get("error", "unknown error"))

    def _request(self, msg: dict, expect: str) -> dict:
        """Send one request; return the first non-error reply of kind
        ``expect`` (raises :class:`ServiceError` on ``error``)."""
        self._send(msg)
        reply = self._recv()
        if reply["op"] == "error":
            raise self._error_from(reply)
        if reply["op"] != expect:
            raise ServiceError(
                f"expected {expect!r} reply, got {reply['op']!r}"
            )
        return reply

    def _retrying(self, fn):
        """Run ``fn`` (a full idempotent request round-trip), retrying
        through dropped connections with backoff + jitter."""
        for attempt in range(self.retries + 1):
            try:
                return fn()
            except RETRYABLE_REQUEST:
                self.close()
                if attempt >= self.retries:
                    raise
                self._sleep_before_retry(attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- operations -----------------------------------------------------

    def ping(self) -> bool:
        self._request({"op": "ping"}, "pong")
        return True

    def submit(
        self,
        job,
        priority: int = 0,
        wait: bool = True,
    ):
        """Run ``job`` on the daemon.

        With ``wait=True`` (default) blocks until the simulation
        finishes and returns its
        :class:`~repro.harness.parallel.SimOutcome` -- bitwise-equal
        to a serial ``run_mix`` with the same inputs.  With
        ``wait=False`` returns the submission ticket dict (``id``,
        ``state``, ``deduped``, ``cached``) immediately.  A dropped
        connection is retried (bounded, backed off): resubmission is
        idempotent through the daemon's dedupe and results cache.
        """
        packed = protocol.pack(job)

        def roundtrip():
            ticket = self._request(
                {
                    "op": "submit",
                    "job": packed,
                    "priority": priority,
                    "wait": wait,
                },
                "submitted",
            )
            if not wait:
                return ticket
            reply = self._recv()
            if reply["op"] == "error":
                raise self._error_from(reply)
            if reply["op"] != "result":
                raise ServiceError(f"expected 'result', got {reply['op']!r}")
            return protocol.unpack(reply["outcome"])

        return self._retrying(roundtrip)

    def submit_batch(self, jobs, priority: int = 0) -> BatchResult:
        """Run a whole sweep in one request.

        Returns a :class:`BatchResult` whose ``outcomes`` are
        slot-aligned with ``jobs`` (``None`` where ``errors`` names a
        failure; call :meth:`BatchResult.raise_on_error` for the
        raise-on-any-failure discipline).  The whole round-trip is
        retried on a dropped connection -- finished slots become
        cache hits on the resubmission.
        """
        packed = [protocol.pack(job) for job in jobs]

        def roundtrip():
            ticket = self._request(
                {"op": "submit_batch", "jobs": packed, "priority": priority},
                "batch_submitted",
            )
            n = ticket["count"]
            batch = BatchResult(
                outcomes=[None] * n,
                ids=list(ticket["ids"]),
                cached=list(ticket["cached"]),
                deduped=list(ticket["deduped"]),
                errors=[None] * n,
            )
            while True:
                reply = self._recv()
                if reply["op"] == "error":
                    raise self._error_from(reply)
                if reply["op"] == "batch_done":
                    return batch
                if reply["op"] != "result":
                    raise ServiceError(
                        f"expected 'result', got {reply['op']!r}"
                    )
                index = int(reply["index"])
                if "error" in reply:
                    batch.errors[index] = reply["error"]
                else:
                    batch.outcomes[index] = protocol.unpack(reply["outcome"])
            return batch

        return self._retrying(roundtrip)

    def status(self, job_id: int | None = None) -> dict:
        msg: dict = {"op": "status"}
        if job_id is not None:
            msg["id"] = job_id
        return self._request(msg, "status")

    def watch(self, job_id: int, timeout: float | None = None):
        """Yield state-transition events until the job is terminal."""
        self._send({"op": "watch", "id": job_id})
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"watch({job_id}) timed out")
            event = self._recv()
            if event["op"] == "error":
                raise self._error_from(event)
            yield event
            if event.get("state") in protocol.TERMINAL_STATES:
                return

    def cancel(self, job_id: int) -> dict:
        return self._request({"op": "cancel", "id": job_id}, "ok")

    def stats(self) -> dict:
        """The daemon's stats-tree snapshot (PR-2 JSON schema)."""
        return self._request({"op": "stats"}, "stats")["tree"]

    def shutdown(self) -> None:
        """Stop the daemon (acknowledged before it exits)."""
        self._request({"op": "shutdown"}, "ok")
        self.close()
