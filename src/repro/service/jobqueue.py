"""Priority job queue with content-keyed dedupe and backpressure.

The queue is the daemon's single source of truth for job state.  A
submission is hashed through the same
:func:`repro.harness.results_cache.job_key` the batch harness uses,
so identical jobs from different clients coalesce onto one
:class:`JobEntry` -- one simulation, many waiters -- exactly as
``run_jobs`` dedupes within a sweep.  Entries are ordered by
``(priority, sequence)``: lower priority numbers run first, FIFO
within a priority, and a crash-retried entry is re-queued ahead of
its priority class so a waiter is never pushed to the back of the
line by someone else's backlog.

Capacity is bounded: submissions beyond ``maxsize`` raise
:class:`QueueFull`, which the server surfaces as a ``queue_full``
error -- backpressure the client can see, instead of an unbounded
daemon heap.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from dataclasses import dataclass, field

from repro.harness import results_cache
from repro.service import protocol


class QueueFull(Exception):
    """The queue is at capacity; the client should retry later."""


class QueueClosed(Exception):
    """The daemon is shutting down; no more work will be dispatched."""


@dataclass
class JobEntry:
    """One deduplicated unit of work and everything observing it."""

    id: int
    key: str
    job: object
    priority: int
    state: str = protocol.QUEUED
    retries: int = 0
    #: Client submissions coalesced onto this entry (>= 1).
    refs: int = 1
    error: str | None = None
    outcome: object | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    #: Resolved with the outcome (or an exception) exactly once.
    future: asyncio.Future = field(default_factory=asyncio.Future)
    #: ``watch`` streams: each watcher gets every state transition.
    watchers: list[asyncio.Queue] = field(default_factory=list)

    def describe(self) -> dict:
        """The wire-visible view of this entry (no payloads)."""
        return {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "priority": self.priority,
            "retries": self.retries,
            "refs": self.refs,
            "error": self.error,
            "wall_time_s": (
                self.finished_at - self.started_at
                if self.finished_at is not None and self.started_at is not None
                else None
            ),
        }


class JobQueue:
    """Bounded priority queue of :class:`JobEntry` objects."""

    def __init__(self, maxsize: int = 256, history: int = 1024):
        if maxsize < 1:
            raise ValueError("queue maxsize must be positive")
        self.maxsize = maxsize
        self.history = history
        self._heap: list[tuple[int, int, int]] = []  # (priority, seq, id)
        self._entries: dict[int, JobEntry] = {}  # every known id
        self._active: dict[str, JobEntry] = {}  # key -> queued/running entry
        self._next_id = 1
        self._next_seq = 0
        self._front_seq = 0  # decrements: retries jump their priority class
        self._closed = False
        self._wakeup: asyncio.Event = asyncio.Event()
        # Telemetry counters (pulled by the service stats tree).
        self.submitted = 0
        self.dedupe_hits = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0

    # -- submission -----------------------------------------------------

    def submit(self, job, priority: int = 0) -> tuple[JobEntry, bool]:
        """Enqueue ``job`` (or coalesce onto an identical active one).

        Returns ``(entry, deduped)``.  Raises :class:`QueueFull` at
        capacity and :class:`QueueClosed` during shutdown.
        """
        if self._closed:
            raise QueueClosed
        key = results_cache.job_key(job)
        active = self._active.get(key)
        if active is not None:
            self.dedupe_hits += 1
            active.refs += 1
            return active, True
        if self.depth() >= self.maxsize:
            self.rejected += 1
            raise QueueFull
        entry = JobEntry(
            id=self._next_id, key=key, job=job, priority=priority
        )
        self._next_id += 1
        self.submitted += 1
        self._entries[entry.id] = entry
        self._active[key] = entry
        self._push(entry, front=False)
        self._prune_history()
        return entry, False

    def _push(self, entry: JobEntry, front: bool) -> None:
        if front:
            self._front_seq -= 1
            seq = self._front_seq
        else:
            self._next_seq += 1
            seq = self._next_seq
        heapq.heappush(self._heap, (entry.priority, seq, entry.id))
        self._wakeup.set()

    def requeue(self, entry: JobEntry) -> None:
        """Put a crash-retried entry back at the head of its class."""
        entry.state = protocol.QUEUED
        entry.retries += 1
        self._push(entry, front=True)

    # -- dispatch -------------------------------------------------------

    async def next(self) -> JobEntry:
        """Wait for, remove and return the next runnable entry."""
        while True:
            while self._heap:
                _, _, entry_id = heapq.heappop(self._heap)
                entry = self._entries.get(entry_id)
                # Cancelled entries stay in the heap (lazy deletion).
                if entry is not None and entry.state == protocol.QUEUED:
                    return entry
            if self._closed:
                raise QueueClosed
            self._wakeup.clear()
            await self._wakeup.wait()

    # -- state transitions ----------------------------------------------

    def _notify(self, entry: JobEntry) -> None:
        event = entry.describe()
        for watcher in entry.watchers:
            watcher.put_nowait(event)

    def mark_running(self, entry: JobEntry) -> None:
        entry.state = protocol.RUNNING
        if entry.started_at is None:
            entry.started_at = time.monotonic()
        self._notify(entry)

    def _finish(self, entry: JobEntry, state: str) -> None:
        entry.state = state
        entry.finished_at = time.monotonic()
        self._active.pop(entry.key, None)
        self._notify(entry)

    def mark_done(self, entry: JobEntry, outcome) -> None:
        entry.outcome = outcome
        self.completed += 1
        self._finish(entry, protocol.DONE)
        if not entry.future.done():
            entry.future.set_result(outcome)

    def mark_failed(self, entry: JobEntry, message: str) -> None:
        entry.error = message
        self.failed += 1
        self._finish(entry, protocol.FAILED)
        if not entry.future.done():
            entry.future.set_exception(RuntimeError(message))
        # A future nobody awaits (fire-and-forget submit) must not
        # warn at teardown.
        entry.future.exception()

    def cancel(self, entry_id: int) -> JobEntry:
        """Cancel a queued entry; running/terminal entries refuse."""
        entry = self._entries.get(entry_id)
        if entry is None:
            raise KeyError(entry_id)
        if entry.state != protocol.QUEUED:
            raise ValueError(f"job {entry_id} is {entry.state}, not queued")
        entry.error = "cancelled"
        self.cancelled += 1
        self._finish(entry, protocol.CANCELLED)
        if not entry.future.done():
            entry.future.set_exception(
                RuntimeError(f"job {entry_id} cancelled")
            )
        entry.future.exception()
        return entry

    def fail_running(self, message: str) -> list[JobEntry]:
        """Fail every running entry (daemon shutdown mid-job)."""
        dropped = []
        for entry in list(self._active.values()):
            if entry.state == protocol.RUNNING:
                self.mark_failed(entry, message)
                dropped.append(entry)
        return dropped

    def close(self) -> list[JobEntry]:
        """Stop accepting work; cancel and return queued entries."""
        self._closed = True
        dropped = []
        for entry in list(self._entries.values()):
            if entry.state == protocol.QUEUED:
                entry.error = "daemon shutting down"
                self.cancelled += 1
                self._finish(entry, protocol.CANCELLED)
                if not entry.future.done():
                    entry.future.set_exception(QueueClosed())
                entry.future.exception()
                dropped.append(entry)
        self._wakeup.set()
        return dropped

    # -- inspection -----------------------------------------------------

    def get(self, entry_id: int) -> JobEntry | None:
        return self._entries.get(entry_id)

    def depth(self) -> int:
        """Entries waiting to run (cancelled heap residue excluded)."""
        return sum(
            1
            for e in self._active.values()
            if e.state == protocol.QUEUED
        )

    def in_flight(self) -> int:
        return sum(
            1
            for e in self._active.values()
            if e.state == protocol.RUNNING
        )

    def _prune_history(self) -> None:
        """Bound the terminal-entry record a resident daemon keeps."""
        if len(self._entries) <= self.history:
            return
        for entry_id in sorted(self._entries):
            entry = self._entries[entry_id]
            if entry.state in protocol.TERMINAL_STATES and not entry.watchers:
                del self._entries[entry_id]
                if len(self._entries) <= self.history:
                    return
