"""Versioned JSON-lines wire protocol for the experiment daemon.

Every message is one JSON object per line, carrying the protocol
version under ``"v"`` and the operation under ``"op"``.  Requests:

- ``submit``: run a simulation job.  Fields: ``job`` (packed
  :class:`~repro.harness.parallel.SimJob`), ``priority`` (int, lower
  runs first, default 0), ``wait`` (bool: stream the result on this
  connection once the job finishes, default true).
- ``submit_batch``: run a whole sweep in one request.  Fields:
  ``jobs`` (list of packed jobs), ``priority``, ``wait``.  The reply
  is one ``batch_submitted`` line carrying per-slot ``ids`` /
  ``cached`` / ``deduped`` vectors, then (with ``wait``) one
  ``result`` line per slot as each job finishes -- ``index`` names
  the slot, ``outcome`` carries the packed result (or ``error`` the
  failure) -- and a final ``batch_done`` summary.
- ``status``: one job's state (``id``) or a daemon summary (no id).
- ``watch``: stream ``event`` lines for a job until it reaches a
  terminal state.
- ``cancel``: cancel a still-queued job by ``id``.
- ``stats``: the daemon's telemetry tree snapshot (same JSON shape as
  ``repro run-mix --stats-json``).
- ``shutdown``: stop the daemon after replying.
- ``ping``: liveness probe.

Responses mirror the request ids: ``submitted``, ``status``,
``event``, ``result``, ``stats``, ``pong``, ``ok`` and ``error``.

Simulation jobs and outcomes are Python object graphs (dataclasses
holding arrays and nested results), so they cross the JSON boundary
as base64-encoded pickles -- exactly the bytes a
``ProcessPoolExecutor`` worker would exchange, which is what keeps
daemon results bitwise-identical to the batch harness.  The daemon
listens on a local Unix socket (or a loopback TCP port the operator
explicitly opted into), so the pickle channel has the same trust
boundary as the worker pool itself.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path

#: Bump on any incompatible message-shape change.  A daemon rejects
#: requests whose ``v`` differs from its own.
PROTOCOL_VERSION = 1

#: Hard cap on one encoded line (guards the daemon against a client
#: streaming garbage into its line buffer).  Outcomes for the paper's
#: systems are a few hundred KiB; 64 MiB is comfortably above any
#: legitimate job or outcome.
MAX_LINE_BYTES = 64 << 20

#: Job lifecycle states, as they appear on the wire.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States after which a job's record never changes again.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class ProtocolError(Exception):
    """A malformed, oversized or version-mismatched message."""


class VersionMismatch(ProtocolError):
    """The peer speaks a different protocol version.

    Carries both versions so servers can answer with a structured
    ``version_mismatch`` error naming each side, and clients can tell
    the operator exactly which end needs upgrading.
    """

    def __init__(self, peer_version, our_version: int = None):
        self.peer_version = peer_version
        self.our_version = PROTOCOL_VERSION if our_version is None else our_version
        super().__init__(
            f"protocol version mismatch: peer speaks "
            f"{peer_version!r}, this end speaks {self.our_version}"
        )


def default_socket() -> Path:
    """The daemon's default Unix-socket path.

    ``REPRO_SERVICE_SOCKET`` overrides; the fallback sits next to the
    results cache so one checkout's clients and daemon agree.
    """
    override = os.environ.get("REPRO_SERVICE_SOCKET")
    if override:
        return Path(override)
    return Path("results") / "service.sock"


def parse_addr(raw: str, what: str = "service address") -> tuple[str, int]:
    """Validate and split a ``host:port`` endpoint string.

    Accepts the bracketed IPv6 form ``[::1]:7070`` (the host is
    returned without the brackets).  A bare IPv6 host is rejected --
    its colons make ``host:port`` ambiguous -- with a hint to bracket
    it.  Every failure raises :class:`ProtocolError` with a one-line
    message naming ``what``, so CLIs can print it and exit instead of
    dumping a traceback.
    """
    text = raw.strip()
    if text.startswith("["):
        host, bracket, rest = text[1:].partition("]")
        if not bracket or not rest.startswith(":"):
            raise ProtocolError(
                f"{what} must be [host]:port, got {raw!r}"
            )
        port_text = rest[1:]
    else:
        host, sep, port_text = text.rpartition(":")
        if not sep:
            raise ProtocolError(
                f"{what} must be host:port, got {raw!r}"
            )
        if ":" in host:
            raise ProtocolError(
                f"{what} has a bare IPv6 host; write it as "
                f"[host]:port, got {raw!r}"
            )
    if not host:
        raise ProtocolError(f"{what} has an empty host: {raw!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError(
            f"{what} port is not an integer: {raw!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ProtocolError(
            f"{what} port must be in 1..65535, got {raw!r}"
        )
    return host, port


def tcp_addr() -> tuple[str, int] | None:
    """Optional TCP endpoint from ``REPRO_SERVICE_ADDR`` (host:port)."""
    raw = os.environ.get("REPRO_SERVICE_ADDR")
    if not raw:
        return None
    return parse_addr(raw, what="REPRO_SERVICE_ADDR")


def encode(msg: dict) -> bytes:
    """One wire line (version stamped, newline terminated)."""
    msg.setdefault("v", PROTOCOL_VERSION)
    line = json.dumps(msg, separators=(",", ":")).encode()
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message of {len(line)} bytes exceeds the line cap")
    return line + b"\n"


def decode(line: bytes) -> dict:
    """Parse and validate one wire line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("line exceeds the protocol size cap")
    try:
        msg = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError("message is not a JSON object")
    version = msg.get("v")
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(version)
    op = msg.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("message has no 'op'")
    return msg


def pack(obj) -> str:
    """A Python object as a base64 pickle string (jobs, outcomes)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack(blob: str):
    """Inverse of :func:`pack`."""
    try:
        return pickle.loads(base64.b64decode(blob.encode("ascii")))
    except Exception as exc:
        raise ProtocolError(f"unpackable payload: {exc!r}") from None


def error(message: str, **extra) -> dict:
    """An ``error`` response line."""
    return {"op": "error", "error": message, **extra}
