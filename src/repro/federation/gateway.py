"""The federation gateway: one scheduler over N experiment daemons.

A :class:`FederationGateway` speaks the same v1 JSON-lines protocol
as :class:`~repro.service.server.ExperimentDaemon` -- every existing
client op (``submit`` / ``submit_batch`` / ``status`` / ``watch`` /
``cancel`` / ``stats`` / ``ping`` / ``shutdown``) works against a
gateway unchanged -- but instead of running workers it *routes*:

- **placement**: jobs are consistent-hash routed by their content key
  (:func:`~repro.harness.results_cache.job_key`) through the
  rendezvous ring (:mod:`repro.federation.ring`), so duplicate
  submissions from any client land on the same node and coalesce in
  that node's queue;
- **dedupe, three layers deep**: the gateway's own read-through
  results cache first (a job computed on node A is a hit when
  resubmitted anywhere, even if node A is gone), then gateway-level
  coalescing of concurrently in-flight identical jobs, then the
  target node's queue dedupe;
- **failover**: a connection that dies mid-job marks the node dead
  and requeues the job to the next node in the ring -- the same
  bounded-retry discipline :class:`~repro.service.workers.WorkerPool`
  applies to crashed workers, one level up.  Health probes (periodic
  ``ping`` + ``status``) drive the membership table for new work and
  revive nodes that come back;
- **federated stores**: outcomes returned by any node are written
  through to the gateway's on-disk results cache (the standard
  ``REPRO_CACHE_DIR`` format), so the fleet's results federate
  without the nodes sharing a filesystem.

Telemetry is a ``federation`` stats group in the PR-2 tree (routed /
dedupe / failover counters, ring state, per-node queue depth), and a
``watch`` with no ``id`` streams periodic snapshots of it over the
existing event channel.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.federation.ring import ALIVE, DEAD, Membership, NodeInfo
from repro.harness import results_cache
from repro.harness.parallel import SimJob
from repro.service import protocol
from repro.telemetry import StatGroup


def default_gateway_socket() -> Path:
    """``REPRO_GATEWAY_SOCKET`` or ``results/gateway.sock``."""
    override = os.environ.get("REPRO_GATEWAY_SOCKET")
    if override:
        return Path(override)
    return Path("results") / "gateway.sock"


def parse_node(spec: str) -> tuple[str, int] | Path:
    """A node address spec: ``host:port`` / ``[v6]:port`` or a Unix
    socket path (anything with a path separator or no colon)."""
    text = spec.strip()
    if not text:
        raise protocol.ProtocolError("empty federation node address")
    if "/" in text or os.sep in text or ":" not in text:
        return Path(text)
    return protocol.parse_addr(text, what="federation node address")


class NodeUnavailable(Exception):
    """The node refused, reset or dropped the connection -- the job
    should fail over to the next node in the ring."""


class NodeRejected(Exception):
    """The node answered an error for this job (deterministic failure
    or malformed payload) -- not retryable elsewhere."""


@dataclass
class GatewayConfig:
    """Everything the gateway needs to come up."""

    socket_path: Path = field(default_factory=default_gateway_socket)
    tcp: tuple[str, int] | None = None
    #: Backend daemon address specs (``host:port`` or socket paths).
    nodes: list[str] = field(default_factory=list)
    health_interval: float = 1.0
    #: Consecutive failed probes before a node is marked dead.
    fail_threshold: int = 2
    #: Concurrent jobs forwarded per node (≈ the node's worker count
    #: plus some queue headroom).
    per_node_inflight: int = 8
    #: Failover hops tolerated per job before it is failed.
    max_retries: int = 2
    use_cache: bool = True
    connect_timeout: float = 10.0
    #: Terminal entries remembered for status/watch queries.
    history: int = 2048


@dataclass
class FedEntry:
    """One deduplicated federated job and everything observing it."""

    id: int
    key: str
    job: SimJob
    packed: str
    priority: int
    state: str = protocol.QUEUED
    node: str | None = None
    retries: int = 0
    refs: int = 1
    error: str | None = None
    #: Packed outcome (base64 pickle) -- passed through to clients
    #: without a decode/encode round-trip.
    outcome_packed: str | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    future: asyncio.Future = field(default_factory=asyncio.Future)
    watchers: list[asyncio.Queue] = field(default_factory=list)

    def describe(self) -> dict:
        return {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "priority": self.priority,
            "node": self.node,
            "retries": self.retries,
            "refs": self.refs,
            "error": self.error,
            "wall_time_s": (
                self.finished_at - self.started_at
                if self.finished_at is not None and self.started_at is not None
                else None
            ),
        }


class FederationGateway:
    """Scheduler/router fronting a fleet of experiment daemons."""

    def __init__(self, config: GatewayConfig):
        if not config.nodes:
            raise ValueError("a gateway needs at least one --node")
        self.config = config
        nodes = [
            NodeInfo(name=f"node{i}", addr=parse_node(spec))
            for i, spec in enumerate(config.nodes)
        ]
        self.membership = Membership(
            nodes, fail_threshold=config.fail_threshold
        )
        self._sems = {
            node.name: asyncio.Semaphore(config.per_node_inflight)
            for node in nodes
        }
        self.started_at = time.monotonic()
        self._servers: list[asyncio.base_events.Server] = []
        self._shutdown = asyncio.Event()
        self._health_task: asyncio.Task | None = None
        self._entry_tasks: set[asyncio.Task] = set()
        self._entries: dict[int, FedEntry] = {}
        self._active: dict[str, FedEntry] = {}
        self._next_id = 1
        # Telemetry counters (pulled by the federation stats group).
        self.connections_total = 0
        self.connections_open = 0
        self.protocol_errors = 0
        self.routed = 0
        self.dedupe_hits = 0
        self.cache_hits = 0
        self.failover_requeues = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.batches = 0
        self.batch_jobs = 0
        self.health_probes = 0

    # -- telemetry ------------------------------------------------------

    def register_stats(self, group: StatGroup) -> None:
        """Register the ``federation`` stats group (PR-2 schema)."""
        group.stat("uptime_s", lambda: time.monotonic() - self.started_at, "seconds since gateway start")
        group.stat("connections_total", lambda: self.connections_total, "client connections accepted")
        group.stat("connections_open", lambda: self.connections_open, "client connections currently open")
        group.stat("protocol_errors", lambda: self.protocol_errors, "malformed request lines answered with errors")
        group.stat("routed", lambda: self.routed, "jobs forwarded to a federation node")
        group.stat("dedupe_hits", lambda: self.dedupe_hits, "submissions coalesced onto an in-flight federated job")
        group.stat("cache_hits", lambda: self.cache_hits, "submissions served from the gateway's read-through results cache")
        group.stat("failover_requeues", lambda: self.failover_requeues, "jobs requeued to another node after theirs died")
        group.stat("completed", lambda: self.completed, "federated jobs finished successfully")
        group.stat("failed", lambda: self.failed, "federated jobs that exhausted failover or raised")
        group.stat("cancelled", lambda: self.cancelled, "federated jobs cancelled before forwarding")
        group.stat("batches", lambda: self.batches, "submit_batch requests accepted")
        group.stat("batch_jobs", lambda: self.batch_jobs, "job slots carried by submit_batch requests")
        group.stat("health_probes", lambda: self.health_probes, "node health probes performed")
        group.stat("in_flight", lambda: sum(n.in_flight for n in self.membership.nodes()), "jobs currently forwarded to nodes")
        group.stat("active", lambda: len(self._active), "deduplicated jobs queued or in flight")
        ring = group.group("ring", "rendezvous ring and membership")
        ring.stat("nodes", lambda: len(self.membership), "configured federation nodes")
        ring.stat("alive", self.membership.alive, "nodes whose last health probe succeeded")
        ring.stat("dead", self.membership.dead, "nodes past the failure threshold")
        nodes = group.group("nodes", "per-node routing and health state")
        for node in self.membership.nodes():
            sub = nodes.group(node.name, f"daemon at {node.addr_text()}")
            sub.stat("alive", lambda n=node: n.state == ALIVE, "last probe succeeded")
            sub.stat("routed", lambda n=node: n.routed, "jobs routed to this node")
            sub.stat("in_flight", lambda n=node: n.in_flight, "jobs currently forwarded here")
            sub.stat("failures", lambda n=node: n.failures, "consecutive failed probes")
            sub.stat("queue_depth", lambda n=node: n.summary.get("queue_depth", -1), "node queue depth at the last probe (-1 before any)")
            sub.stat("workers_alive", lambda n=node: n.summary.get("workers_alive", -1), "node worker processes at the last probe (-1 before any)")

    def stats_tree(self) -> StatGroup:
        root = StatGroup("root", "federation gateway statistics")
        self.register_stats(
            root.group("federation", "gateway scheduler over N daemons")
        )
        return root

    def _summary(self) -> dict:
        return {
            "op": "status",
            "role": "gateway",
            "uptime_s": time.monotonic() - self.started_at,
            "nodes": self.membership.rows(),
            "routed": self.routed,
            "dedupe_hits": self.dedupe_hits,
            "cache_hits": self.cache_hits,
            "failover_requeues": self.failover_requeues,
            "completed": self.completed,
            "failed": self.failed,
            "in_flight": sum(n.in_flight for n in self.membership.nodes()),
            "active": len(self._active),
        }

    # -- entry lifecycle ------------------------------------------------

    def _notify(self, entry: FedEntry) -> None:
        event = entry.describe()
        for watcher in entry.watchers:
            watcher.put_nowait(event)

    def _finish(self, entry: FedEntry, state: str) -> None:
        entry.state = state
        entry.finished_at = time.monotonic()
        self._active.pop(entry.key, None)
        self._notify(entry)

    def _finish_done(self, entry: FedEntry, packed_outcome: str) -> None:
        entry.outcome_packed = packed_outcome
        self.completed += 1
        self._finish(entry, protocol.DONE)
        if not entry.future.done():
            entry.future.set_result(packed_outcome)
        if self.config.use_cache:
            try:
                results_cache.store(
                    entry.key, protocol.unpack(packed_outcome)
                )
            except protocol.ProtocolError:
                pass  # a node answered garbage; the client still sees it

    def _finish_failed(self, entry: FedEntry, message: str) -> None:
        entry.error = message
        self.failed += 1
        self._finish(entry, protocol.FAILED)
        if not entry.future.done():
            entry.future.set_exception(RuntimeError(message))
        entry.future.exception()  # fire-and-forget submits must not warn

    def _prune_history(self) -> None:
        if len(self._entries) <= self.config.history:
            return
        for entry_id in sorted(self._entries):
            entry = self._entries[entry_id]
            if entry.state in protocol.TERMINAL_STATES and not entry.watchers:
                del self._entries[entry_id]
                if len(self._entries) <= self.config.history:
                    return

    def _admit(self, job: SimJob, packed: str, priority: int):
        """Cache-check, coalesce or enqueue one job; returns
        ``(ticket, entry, packed_cached_outcome)``."""
        key = results_cache.job_key(job)
        if self.config.use_cache:
            cached = results_cache.load(key)
            if cached is not None:
                self.cache_hits += 1
                ticket = {
                    "id": 0,
                    "key": key,
                    "state": protocol.DONE,
                    "deduped": False,
                    "cached": True,
                }
                return ticket, None, protocol.pack(cached)
        active = self._active.get(key)
        if active is not None:
            self.dedupe_hits += 1
            active.refs += 1
            ticket = {
                "id": active.id,
                "key": key,
                "state": active.state,
                "deduped": True,
                "cached": False,
            }
            return ticket, active, None
        entry = FedEntry(
            id=self._next_id, key=key, job=job, packed=packed,
            priority=priority,
        )
        self._next_id += 1
        self._entries[entry.id] = entry
        self._active[key] = entry
        task = asyncio.ensure_future(self._run_entry(entry))
        self._entry_tasks.add(task)
        task.add_done_callback(self._entry_tasks.discard)
        self._prune_history()
        ticket = {
            "id": entry.id,
            "key": key,
            "state": entry.state,
            "deduped": False,
            "cached": False,
        }
        return ticket, entry, None

    # -- routing and forwarding -----------------------------------------

    async def _run_entry(self, entry: FedEntry) -> None:
        """Drive one job to a terminal state, failing over across
        nodes under the bounded-retry discipline."""
        tried: set[str] = set()
        while True:
            if entry.state == protocol.CANCELLED:
                return
            name = self.membership.route(entry.key, exclude=tried)
            if name is None:
                self._finish_failed(
                    entry,
                    f"no live federation nodes (of {len(self.membership)})",
                )
                return
            node = self.membership.node(name)
            entry.node = name
            async with self._sems[name]:
                if entry.state == protocol.CANCELLED:
                    return
                node.in_flight += 1
                node.routed += 1
                self.routed += 1
                entry.state = protocol.RUNNING
                if entry.started_at is None:
                    entry.started_at = time.monotonic()
                self._notify(entry)
                try:
                    packed_outcome = await self._forward(node, entry)
                except NodeUnavailable as exc:
                    failure = exc
                except NodeRejected as exc:
                    self._finish_failed(entry, str(exc))
                    return
                except asyncio.CancelledError:
                    raise
                else:
                    self._finish_done(entry, packed_outcome)
                    return
                finally:
                    node.in_flight -= 1
            # Node died under the job: requeue to the next in the
            # ring, same bounded discipline as WorkerPool retries.
            self.failover_requeues += 1
            entry.retries += 1
            tried.add(name)
            self.membership.note_failure(name, fatal=True)
            entry.state = protocol.QUEUED
            entry.node = None
            self._notify(entry)
            if entry.retries > self.config.max_retries:
                self._finish_failed(
                    entry,
                    f"{failure} (gave up after {entry.retries} failovers)",
                )
                return

    async def _open(self, node: NodeInfo):
        if isinstance(node.addr, tuple):
            host, port = node.addr
            coro = asyncio.open_connection(
                host=host, port=port, limit=protocol.MAX_LINE_BYTES
            )
        else:
            coro = asyncio.open_unix_connection(
                path=str(node.addr), limit=protocol.MAX_LINE_BYTES
            )
        return await asyncio.wait_for(coro, self.config.connect_timeout)

    async def _forward(self, node: NodeInfo, entry: FedEntry) -> str:
        """Run one job on ``node`` over a dedicated connection and
        return the packed outcome (no unpickle on the hot path)."""
        try:
            reader, writer = await self._open(node)
        except (OSError, asyncio.TimeoutError) as exc:
            raise NodeUnavailable(
                f"{node.name} ({node.addr_text()}) unreachable: {exc}"
            ) from None
        try:
            writer.write(protocol.encode({
                "op": "submit",
                "job": entry.packed,
                "priority": entry.priority,
                "wait": True,
            }))
            await writer.drain()
            submitted = await self._read_node_line(node, reader)
            if submitted["op"] == "error":
                self._raise_node_error(node, submitted)
            if submitted["op"] != "submitted":
                raise NodeRejected(
                    f"{node.name} answered {submitted['op']!r} to submit"
                )
            result = await self._read_node_line(node, reader)
            if result["op"] == "error":
                self._raise_node_error(node, result)
            if result["op"] != "result":
                raise NodeRejected(
                    f"{node.name} answered {result['op']!r}, expected result"
                )
            return result["outcome"]
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise NodeUnavailable(f"{node.name} reset: {exc}") from None
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_node_line(self, node: NodeInfo, reader) -> dict:
        line = await reader.readline()
        if not line:
            raise NodeUnavailable(
                f"{node.name} dropped the connection mid-job"
            )
        try:
            return protocol.decode(line)
        except protocol.VersionMismatch as exc:
            raise NodeRejected(
                f"{node.name} speaks protocol v{exc.peer_version!r}, "
                f"gateway speaks v{exc.our_version}"
            ) from None
        except protocol.ProtocolError as exc:
            raise NodeRejected(f"{node.name} answered garbage: {exc}") from None

    @staticmethod
    def _raise_node_error(node: NodeInfo, msg: dict) -> None:
        error = msg.get("error", "unknown error")
        # Backpressure and shutdown are the node's problem, not the
        # job's: fail over instead of failing the client.
        if error in ("queue_full", "shutting_down"):
            raise NodeUnavailable(f"{node.name}: {error}")
        raise NodeRejected(f"{node.name}: {error}")

    # -- health ---------------------------------------------------------

    async def _probe(self, node: NodeInfo) -> None:
        self.health_probes += 1
        try:
            reader, writer = await self._open(node)
        except (OSError, asyncio.TimeoutError):
            self.membership.note_failure(node.name)
            return
        try:
            writer.write(protocol.encode({"op": "ping"}))
            writer.write(protocol.encode({"op": "status"}))
            await writer.drain()
            pong = await asyncio.wait_for(
                reader.readline(), self.config.connect_timeout
            )
            status = await asyncio.wait_for(
                reader.readline(), self.config.connect_timeout
            )
            if not pong or protocol.decode(pong)["op"] != "pong":
                raise OSError("bad ping reply")
            summary = protocol.decode(status) if status else {}
        except (OSError, asyncio.TimeoutError, protocol.ProtocolError):
            self.membership.note_failure(node.name)
            return
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self.membership.mark_alive(
            node.name,
            {
                "queue_depth": summary.get("queue_depth"),
                "in_flight": summary.get("in_flight"),
                "workers_alive": summary.get("workers_alive"),
            },
        )

    async def _health_loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._probe(n) for n in self.membership.nodes()),
                return_exceptions=True,
            )
            await asyncio.sleep(self.config.health_interval)

    # -- request handlers -----------------------------------------------

    async def _reply(self, writer: asyncio.StreamWriter, msg: dict) -> None:
        writer.write(protocol.encode(msg))
        await writer.drain()

    async def _handle_submit(self, msg: dict, writer) -> None:
        packed = msg.get("job")
        job = None
        if isinstance(packed, str):
            try:
                job = protocol.unpack(packed)
            except protocol.ProtocolError:
                job = None
        if not isinstance(job, SimJob):
            await self._reply(
                writer, protocol.error("submit carries no SimJob payload")
            )
            return
        wait = bool(msg.get("wait", True))
        priority = int(msg.get("priority", 0))
        ticket, entry, cached_packed = self._admit(job, packed, priority)
        await self._reply(writer, {"op": "submitted", **ticket})
        if not wait:
            return
        if cached_packed is not None:
            await self._reply(
                writer, {"op": "result", "id": 0, "outcome": cached_packed}
            )
            return
        try:
            packed_outcome = await asyncio.shield(entry.future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            await self._reply(
                writer,
                protocol.error(str(exc), id=entry.id, state=entry.state),
            )
            return
        await self._reply(
            writer,
            {"op": "result", "id": entry.id, "outcome": packed_outcome},
        )

    async def _handle_submit_batch(self, msg: dict, writer) -> None:
        packed_jobs = msg.get("jobs")
        if not isinstance(packed_jobs, list) or not packed_jobs:
            await self._reply(
                writer, protocol.error("submit_batch carries no job list")
            )
            return
        jobs = []
        for i, blob in enumerate(packed_jobs):
            try:
                job = protocol.unpack(blob)
            except protocol.ProtocolError:
                job = None
            if not isinstance(job, SimJob):
                await self._reply(
                    writer,
                    protocol.error(f"submit_batch slot {i} is not a SimJob"),
                )
                return
            jobs.append(job)
        wait = bool(msg.get("wait", True))
        priority = int(msg.get("priority", 0))
        self.batches += 1
        self.batch_jobs += len(jobs)
        ids, cached_flags, deduped_flags = [], [], []
        ready: dict[int, str] = {}
        entries: dict[int, FedEntry] = {}
        for i, (job, blob) in enumerate(zip(jobs, packed_jobs)):
            ticket, entry, cached_packed = self._admit(job, blob, priority)
            ids.append(ticket["id"])
            cached_flags.append(ticket["cached"])
            deduped_flags.append(ticket["deduped"])
            if cached_packed is not None:
                ready[i] = cached_packed
            else:
                entries[i] = entry
        await self._reply(
            writer,
            {
                "op": "batch_submitted",
                "count": len(jobs),
                "ids": ids,
                "cached": cached_flags,
                "deduped": deduped_flags,
            },
        )
        if not wait:
            return
        completed = failed = 0
        for i in sorted(ready):
            completed += 1
            await self._reply(
                writer,
                {"op": "result", "index": i, "id": ids[i], "outcome": ready[i]},
            )
        shields = {i: asyncio.shield(e.future) for i, e in entries.items()}
        remaining = dict(entries)
        while remaining:
            await asyncio.wait(
                set(shields[i] for i in remaining),
                return_when=asyncio.FIRST_COMPLETED,
            )
            for i in [i for i, e in remaining.items() if e.future.done()]:
                entry = remaining.pop(i)
                try:
                    packed_outcome = entry.future.result()
                except Exception as exc:
                    failed += 1
                    await self._reply(
                        writer,
                        {
                            "op": "result",
                            "index": i,
                            "id": entry.id,
                            "error": str(exc),
                        },
                    )
                else:
                    completed += 1
                    await self._reply(
                        writer,
                        {
                            "op": "result",
                            "index": i,
                            "id": entry.id,
                            "outcome": packed_outcome,
                        },
                    )
        await self._reply(
            writer,
            {"op": "batch_done", "completed": completed, "failed": failed},
        )

    async def _handle_watch(self, msg: dict, writer) -> None:
        if "id" not in msg:
            await self._handle_watch_federation(msg, writer)
            return
        entry = self._entries.get(int(msg.get("id", -1)))
        if entry is None:
            await self._reply(writer, protocol.error("unknown_job"))
            return
        events: asyncio.Queue = asyncio.Queue()
        entry.watchers.append(events)
        try:
            event = entry.describe()
            await self._reply(writer, {"op": "event", **event})
            while event["state"] not in protocol.TERMINAL_STATES:
                event = await events.get()
                await self._reply(writer, {"op": "event", **event})
        finally:
            entry.watchers.remove(events)

    async def _handle_watch_federation(self, msg: dict, writer) -> None:
        """``watch`` without an id: stream periodic federation stats
        snapshots (``count`` bounds them; ``interval`` seconds apart)."""
        count = msg.get("count")
        count = None if count is None else max(1, int(count))
        interval = float(msg.get("interval", self.config.health_interval))
        sent = 0
        while count is None or sent < count:
            await self._reply(
                writer,
                {
                    "op": "event",
                    "kind": "federation",
                    "tree": self.stats_tree().snapshot(),
                },
            )
            sent += 1
            if count is not None and sent >= count:
                return
            await asyncio.sleep(max(0.05, interval))

    def _cancel_entry(self, entry_id: int) -> FedEntry:
        entry = self._entries.get(entry_id)
        if entry is None:
            raise KeyError(entry_id)
        if entry.state != protocol.QUEUED:
            raise ValueError(f"job {entry_id} is {entry.state}, not queued")
        entry.error = "cancelled"
        self.cancelled += 1
        self._finish(entry, protocol.CANCELLED)
        if not entry.future.done():
            entry.future.set_exception(
                RuntimeError(f"job {entry_id} cancelled")
            )
        entry.future.exception()
        return entry

    async def _handle_one(self, msg: dict, writer) -> bool:
        op = msg["op"]
        if op == "submit":
            await self._handle_submit(msg, writer)
        elif op == "submit_batch":
            await self._handle_submit_batch(msg, writer)
        elif op == "status":
            if "id" in msg:
                entry = self._entries.get(int(msg["id"]))
                if entry is None:
                    await self._reply(writer, protocol.error("unknown_job"))
                else:
                    await self._reply(
                        writer, {"op": "status", **entry.describe()}
                    )
            else:
                await self._reply(writer, self._summary())
        elif op == "watch":
            await self._handle_watch(msg, writer)
        elif op == "cancel":
            try:
                entry = self._cancel_entry(int(msg.get("id", -1)))
            except KeyError:
                await self._reply(writer, protocol.error("unknown_job"))
            except ValueError as exc:
                await self._reply(writer, protocol.error(str(exc)))
            else:
                await self._reply(writer, {"op": "ok", "id": entry.id})
        elif op == "stats":
            await self._reply(
                writer, {"op": "stats", "tree": self.stats_tree().snapshot()}
            )
        elif op == "ping":
            await self._reply(writer, {"op": "pong", "role": "gateway"})
        elif op == "shutdown":
            await self._reply(writer, {"op": "ok"})
            self.request_shutdown()
            return False
        else:
            self.protocol_errors += 1
            await self._reply(writer, protocol.error(f"unknown op {op!r}"))
        return True

    async def _handle_client(self, reader, writer) -> None:
        self.connections_total += 1
        self.connections_open += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(
                        writer, protocol.error("line exceeds the protocol cap")
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = protocol.decode(line)
                except protocol.VersionMismatch as exc:
                    self.protocol_errors += 1
                    await self._reply(
                        writer,
                        protocol.error(
                            str(exc),
                            code="version_mismatch",
                            client_version=exc.peer_version,
                            server_version=exc.our_version,
                        ),
                    )
                    continue
                except protocol.ProtocolError as exc:
                    self.protocol_errors += 1
                    await self._reply(writer, protocol.error(str(exc)))
                    continue
                if not await self._handle_one(msg, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.connections_open -= 1
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # -- lifecycle ------------------------------------------------------

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def start(self) -> None:
        """Bind sockets, start the health loop (no blocking wait)."""
        path = self.config.socket_path
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            path.unlink()
        self._servers.append(
            await asyncio.start_unix_server(
                self._handle_client, path=str(path),
                limit=protocol.MAX_LINE_BYTES,
            )
        )
        if self.config.tcp is not None:
            host, port = self.config.tcp
            self._servers.append(
                await asyncio.start_server(
                    self._handle_client, host=host, port=port,
                    limit=protocol.MAX_LINE_BYTES,
                )
            )
        await asyncio.gather(
            *(self._probe(n) for n in self.membership.nodes()),
            return_exceptions=True,
        )
        self._health_task = asyncio.create_task(
            self._health_loop(), name="federation-health"
        )

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        for task in list(self._entry_tasks):
            task.cancel()
        await asyncio.gather(*self._entry_tasks, return_exceptions=True)
        for entry in list(self._active.values()):
            self._finish_failed(entry, "gateway shutting down")
        with contextlib.suppress(OSError):
            self.config.socket_path.unlink()

    async def serve(self, install_signals: bool = True) -> None:
        """Run until ``shutdown`` (op, SIGTERM or SIGINT)."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(signum, self.request_shutdown)
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()


def serve_gateway(config: GatewayConfig) -> None:
    """Blocking entry point: run a gateway in this process."""
    asyncio.run(FederationGateway(config).serve())
