"""Rendezvous hashing and node membership for the federation tier.

Routing contract: a job's content key (:func:`results_cache.job_key`)
must land on the same node no matter which client submits it and no
matter which gateway restart is serving, so duplicate submissions
coalesce on one daemon's queue instead of simulating twice.  We use
rendezvous (highest-random-weight) hashing over *logical* node names
(``node0``, ``node1``, ... in configuration order): each ``(node,
key)`` pair is scored by a hash, and the key routes to the
highest-scoring routable node.  Rendezvous gives the two properties
we need for free:

- **stability** -- adding or removing one node only remaps the keys
  whose top choice changed (~1/N of them), so a mostly-warm fleet
  stays warm;
- **failover order** -- the preference list for a key is a
  deterministic permutation of all nodes, so "the next node in the
  ring" after a death is simply the next-highest score, identical
  from every gateway's point of view.

:class:`Membership` layers liveness over the ring: every node carries
a state (``alive`` / ``dead`` / ``unknown``), a consecutive-failure
count fed by the gateway's health probes, and the last status summary
the node answered (queue depth, workers alive) for telemetry.  A node
is routable unless it is known dead; ``unknown`` nodes (not yet
probed) are routable so a gateway is useful before its first health
sweep completes.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path

ALIVE = "alive"
DEAD = "dead"
UNKNOWN = "unknown"


@dataclass
class NodeInfo:
    """One federation member: address, liveness and routing counters."""

    name: str
    #: TCP ``(host, port)`` or a Unix socket path.
    addr: tuple[str, int] | Path
    state: str = UNKNOWN
    #: Consecutive failed health probes (reset by any success).
    failures: int = 0
    last_seen: float | None = None
    #: Last ``status`` summary the node answered (queue depth etc.).
    summary: dict = field(default_factory=dict)
    #: Jobs the gateway routed here over its lifetime.
    routed: int = 0
    #: Jobs currently forwarded to this node and awaiting results.
    in_flight: int = 0

    @property
    def routable(self) -> bool:
        return self.state != DEAD

    def addr_text(self) -> str:
        if isinstance(self.addr, tuple):
            host, port = self.addr
            return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"
        return str(self.addr)

    def describe(self) -> dict:
        """The wire-visible row for ``fed-status`` and health views."""
        return {
            "name": self.name,
            "addr": self.addr_text(),
            "state": self.state,
            "failures": self.failures,
            "routed": self.routed,
            "in_flight": self.in_flight,
            "queue_depth": self.summary.get("queue_depth"),
            "workers_alive": self.summary.get("workers_alive"),
            "last_seen_s": (
                None if self.last_seen is None
                else time.monotonic() - self.last_seen
            ),
        }


class HashRing:
    """Highest-random-weight hashing over a fixed set of node names."""

    def __init__(self, names: list[str]):
        if not names:
            raise ValueError("a hash ring needs at least one node")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names!r}")
        self._names = list(names)

    @property
    def names(self) -> list[str]:
        return list(self._names)

    @staticmethod
    def _score(name: str, key: str) -> int:
        digest = hashlib.sha256(f"{name}\x00{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def preference(self, key: str) -> list[str]:
        """All nodes, best placement first, deterministic per key."""
        return sorted(
            self._names, key=lambda name: self._score(name, key), reverse=True
        )

    def route(self, key: str, routable: set[str]) -> str | None:
        """The best routable node for ``key`` (``None`` if none are)."""
        for name in self.preference(key):
            if name in routable:
                return name
        return None


class Membership:
    """Liveness table over the ring's nodes, driven by health probes."""

    def __init__(self, nodes: list[NodeInfo], fail_threshold: int = 2):
        if fail_threshold < 1:
            raise ValueError("fail threshold must be positive")
        self.fail_threshold = fail_threshold
        self._nodes = {node.name: node for node in nodes}
        if len(self._nodes) != len(nodes):
            raise ValueError("duplicate node names in membership")
        self.ring = HashRing([node.name for node in nodes])

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> NodeInfo:
        return self._nodes[name]

    def nodes(self) -> list[NodeInfo]:
        return list(self._nodes.values())

    def routable_names(self) -> set[str]:
        return {n.name for n in self._nodes.values() if n.routable}

    def alive(self) -> int:
        return sum(1 for n in self._nodes.values() if n.state == ALIVE)

    def dead(self) -> int:
        return sum(1 for n in self._nodes.values() if n.state == DEAD)

    def mark_alive(self, name: str, summary: dict | None = None) -> None:
        node = self._nodes[name]
        node.state = ALIVE
        node.failures = 0
        node.last_seen = time.monotonic()
        if summary is not None:
            node.summary = summary

    def note_failure(self, name: str, fatal: bool = False) -> bool:
        """Record one failed probe (or, with ``fatal``, a mid-job
        connection loss -- conclusive on its own).  Returns True when
        this crossed the node into ``dead``."""
        node = self._nodes[name]
        node.failures += 1
        was_dead = node.state == DEAD
        if fatal or node.failures >= self.fail_threshold:
            node.state = DEAD
        return node.state == DEAD and not was_dead

    def route(self, key: str, exclude: set[str] | None = None) -> str | None:
        """Best node for ``key`` among live nodes not in ``exclude``.

        Falls back to ignoring ``exclude`` (a job that already failed
        over off a node may retry it) before giving up entirely --
        only an all-dead fleet returns ``None``.
        """
        routable = self.routable_names()
        if exclude:
            narrowed = routable - exclude
            if narrowed:
                routable = narrowed
        if not routable:
            return None
        return self.ring.route(key, routable)

    def rows(self) -> list[dict]:
        return [node.describe() for node in self._nodes.values()]
