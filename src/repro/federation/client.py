"""Client-side facade for the federation gateway.

:class:`FederatedClient` is a :class:`~repro.service.client.ServiceClient`
pointed at a gateway instead of a single daemon -- the wire protocol
is identical, so every inherited method (``submit``, ``submit_batch``,
``watch``, ``stats``...) works unchanged; what changes is *where* the
work lands: the gateway consistent-hash routes each job by its content
key across the fleet, coalesces duplicates, and fails jobs over when a
node dies mid-sweep.

The gateway address resolves in order: explicit argument, the
``REPRO_FED_GATEWAY`` environment variable, then the gateway's default
Unix socket (``REPRO_GATEWAY_SOCKET`` or ``results/gateway.sock``).
An address spec containing a path separator (or no colon) is a Unix
socket path; anything else must parse as ``host:port`` / ``[v6]:port``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.federation.gateway import default_gateway_socket, parse_node
from repro.service.client import ServiceClient

ENV_GATEWAY = "REPRO_FED_GATEWAY"


def resolve_gateway(
    spec: str | Path | None = None,
) -> tuple[Path | None, tuple[str, int] | None]:
    """Resolve a gateway spec to ``(socket_path, tcp)`` -- exactly one
    of the pair is non-None."""
    if spec is None:
        spec = os.environ.get(ENV_GATEWAY) or None
    if spec is None:
        return default_gateway_socket(), None
    addr = parse_node(str(spec))
    if isinstance(addr, Path):
        return addr, None
    return None, addr


def federation_enabled() -> bool:
    """True when ``REPRO_FED_GATEWAY`` asks harness fan-out paths to
    route sweeps through a gateway."""
    return bool(os.environ.get(ENV_GATEWAY))


class FederatedClient(ServiceClient):
    """One connection to a federation gateway.

    Example::

        with FederatedClient("127.0.0.1:7070") as fed:
            batch = fed.submit_batch(jobs).raise_on_error()
    """

    def __init__(self, gateway: str | Path | None = None, **kwargs):
        socket_path, tcp = resolve_gateway(gateway)
        super().__init__(socket_path=socket_path, tcp=tcp, **kwargs)

    def federation_status(self) -> dict:
        """The gateway's summary row set (nodes, counters)."""
        return self.status()

    def node_rows(self) -> list[dict]:
        """Per-node membership rows (name, addr, state, queue depth)."""
        return self.status().get("nodes", [])
