"""repro.federation: a gateway/scheduler over N experiment daemons.

PR-5 made the simulator resident (:mod:`repro.service`); this package
makes it a *fleet*.  A :class:`FederationGateway` speaks the same v1
JSON-lines protocol as a single daemon, so existing clients work
unchanged, but routes jobs across nodes by consistent-hashing their
content keys (duplicate submissions from any client coalesce on one
node), health-checks the membership, fails work over when a node dies
mid-sweep, and federates results through a gateway-side read-through
results cache.

- :mod:`~repro.federation.ring`: rendezvous hashing + membership;
- :mod:`~repro.federation.gateway`: the asyncio gateway process
  (``repro gateway`` in the CLI);
- :mod:`~repro.federation.client`: :class:`FederatedClient` facade
  (``repro fed-submit`` / ``repro fed-status`` in the CLI).

Determinism contract is preserved end to end: an outcome federated
through any number of gateway hops is bitwise-identical to a serial
``run_mix`` with the same inputs (``tests/federation/`` asserts it,
including across a mid-sweep node kill).
"""

from repro.federation.client import (
    ENV_GATEWAY,
    FederatedClient,
    federation_enabled,
    resolve_gateway,
)
from repro.federation.gateway import (
    FederationGateway,
    GatewayConfig,
    default_gateway_socket,
    parse_node,
    serve_gateway,
)
from repro.federation.ring import HashRing, Membership, NodeInfo

__all__ = [
    "ENV_GATEWAY",
    "FederatedClient",
    "FederationGateway",
    "GatewayConfig",
    "HashRing",
    "Membership",
    "NodeInfo",
    "default_gateway_socket",
    "federation_enabled",
    "parse_node",
    "resolve_gateway",
    "serve_gateway",
]
