"""Decorator-based plugin registries for schemes, arrays and policies.

The string-token ``if/elif`` factories this replaces had three
problems: adding a scheme meant editing every consumer (the factory,
the CLI, the partitioned-or-not inference in the runner, the results
cache), malformed tokens fell through to silent defaults, and nothing
tied a cached simulation result to the code that constructed its
scheme.  A :class:`Registry` fixes all three: construction knowledge
lives with the component (``@register_scheme`` / ``@register_array``
next to the class), every entry carries metadata consumers can query
(description, ``partitioned``), and every entry has a *fingerprint* --
a digest of its name, version and builder source -- that the results
cache folds into its keys, so editing how a scheme is built
invalidates exactly the stale entries.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class RegistryEntry:
    """One registered builder plus its metadata."""

    kind: str
    name: str
    builder: Callable
    description: str = ""
    version: int = 1
    metadata: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Digest of everything that defines this entry's behaviour.

        Builder source is included best-effort: editing a builder (or
        bumping ``version`` for changes the source cannot see, such as
        a constant moved to another module) changes the fingerprint
        and thereby invalidates cached results built through it.
        """
        try:
            source = inspect.getsource(self.builder)
        except (OSError, TypeError):
            source = repr(self.builder)
        blob = "\x1f".join(
            (self.kind, self.name, str(self.version), source)
        )
        return hashlib.sha256(blob.encode()).hexdigest()


class Registry:
    """Name-keyed registry of builders with prefix matching.

    Registration is via decorator::

        @SCHEMES.register("vantage", partitioned=True,
                          description="Vantage practical controller")
        def _build_vantage(array, num_partitions, *, seed, vantage_config):
            ...

    Lookups are exact (:meth:`get`) or longest-prefix
    (:meth:`match_prefix`), the latter for composed tokens such as
    ``vantage-drrip-z4/52`` where the entry name is a prefix of the
    full spec.  Unknown names raise ``ValueError`` listing what *is*
    registered -- never a silent default.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        *,
        description: str = "",
        version: int = 1,
        replace: bool = False,
        **metadata: Any,
    ) -> Callable[[Callable], Callable]:
        """Decorator registering ``fn`` as the builder for ``name``."""
        if not name:
            raise ValueError(f"{self.kind} name must be non-empty")

        def decorator(fn: Callable) -> Callable:
            if name in self._entries and not replace:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass replace=True to override"
                )
            self._entries[name] = RegistryEntry(
                kind=self.kind,
                name=name,
                builder=fn,
                description=description,
                version=version,
                metadata=dict(metadata),
            )
            return fn

        return decorator

    # -- lookup ---------------------------------------------------------

    def get(self, name: str) -> RegistryEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered: "
                f"{', '.join(sorted(self._entries))}"
            )
        return entry

    def match_prefix(
        self, text: str, sep: str = ""
    ) -> tuple[RegistryEntry, str] | None:
        """Longest registered name that prefixes ``text``.

        With ``sep``, the name must be followed by the separator
        (``vantage-drrip-z4/52`` matches ``vantage-drrip``, not
        ``vantage``); the returned remainder excludes it.  Returns
        ``None`` when nothing matches.
        """
        for name in sorted(self._entries, key=len, reverse=True):
            prefix = name + sep
            if text.startswith(prefix) and len(text) > len(prefix):
                return self._entries[name], text[len(prefix):]
        return None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def entries(self) -> list[RegistryEntry]:
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- fingerprints ---------------------------------------------------

    def fingerprint(self, *names: str) -> str:
        """Combined fingerprint of the given entries (all when empty)."""
        selected = names if names else tuple(self.names())
        digest = hashlib.sha256()
        for name in selected:
            digest.update(self.get(name).fingerprint().encode())
        return digest.hexdigest()
