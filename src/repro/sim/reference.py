"""Reference (pre-optimization) simulation kernels.

The hot paths of the simulator -- the zcache replacement walk, the
Vantage demotion scan and the CMP event loop -- were rewritten for
speed (see ``repro bench``).  This module preserves the original,
straightforward implementations:

- :func:`reference_run` is the original heap-based event loop of
  :meth:`repro.sim.system.CMPSystem.run`;
- :class:`ReferenceVantageCache` is the original miss path of
  :class:`repro.core.cache.VantageCache`, driven by full
  :class:`~repro.arrays.base.Candidate` lists;
- :class:`ReferenceBaselineCache` is the original miss path of
  :class:`~repro.partitioning.base_cache.BaselineCache`.

They serve two purposes.  ``repro bench`` times the optimized kernels
against these to report the measured speedup, and the parity tests
(``tests/sim/test_reference_parity.py``) assert that both
implementations produce *identical* :class:`SystemResult`s -- the
optimizations are pure strength reductions, not behaviour changes.
"""

from __future__ import annotations

import heapq

from repro.allocation.ucp import UCPPolicy
from repro.allocation.umon import UMonitor
from repro.arrays.base import Candidate
from repro.core.cache import VantageCache
from repro.partitioning.base_cache import BaselineCache
from repro.sim.system import CoreResult, SystemResult


class ReferenceVantageCache(VantageCache):
    """Vantage controller with the original candidate-list miss path."""

    def _miss(self, addr: int, part: int) -> None:
        array = self.array
        candidates = array.candidates(addr)
        victim = self._first_empty(candidates)
        demoted_this_miss: list[Candidate] = []
        if victim is None:
            victim = self._reference_replacement(candidates, demoted_this_miss)
        self._finish_install(addr, part, victim)

    def _reference_replacement(
        self, candidates: list[Candidate], demoted: list[Candidate]
    ) -> Candidate:
        """Demotion checks over all candidates, then victim selection."""
        part_of = self.part_of
        line_ts = self.line_ts
        actual = self.actual_size
        target = self.target
        c_adjust = self.config.candidates_per_adjust
        UNMANAGED = -1
        TS_MOD = 256

        best_unmanaged: Candidate | None = None
        best_unmanaged_age = -1
        for cand in candidates:
            slot = cand.slot
            owner = part_of[slot]
            if owner == UNMANAGED:
                age = (self.unmanaged_ts - line_ts[slot]) % TS_MOD
                if age > best_unmanaged_age:
                    best_unmanaged_age = age
                    best_unmanaged = cand
                continue
            self.cands_seen[owner] += 1
            if actual[owner] > target[owner] and self._demotable(slot, owner):
                self._demote(slot, owner)
                demoted.append(cand)
            if self.cands_seen[owner] >= c_adjust:
                self._adjust_setpoint(owner)

        if not demoted:
            self._on_no_demotions([c.slot for c in candidates])

        if best_unmanaged is not None:
            self.evictions_unmanaged += 1
            self._evict_slot(best_unmanaged.slot)
            return best_unmanaged

        self.evictions_managed += 1
        if demoted:
            victim = demoted[0]
        else:
            over = [
                c
                for c in candidates
                if actual[part_of[c.slot]] > target[part_of[c.slot]]
            ]
            pool = over if over else candidates
            victim = max(pool, key=lambda c: self.staleness(c.slot))
            self._setpoint_demote_more(part_of[victim.slot])
        self._evict_slot(victim.slot)
        return victim


class ReferenceBaselineCache(BaselineCache):
    """Unpartitioned baseline with the original candidate-list miss path."""

    def access(self, addr: int, part: int = 0) -> bool:
        array = self.array
        slot = array.lookup(addr)
        if slot is not None:
            self.policy.on_hit(slot, part, addr)
            self._record_access(part, hit=True)
            if self._shared_code and self.part_of[slot] != part:
                self._shared_hit(slot, part)
            return True

        self._record_access(part, hit=False)
        candidates = array.candidates(addr)
        victim = self._first_empty(candidates)
        if victim is None:
            victim = self.policy.select_victim(candidates)
            self._evict_bookkeeping(victim)
        moves = array.install(addr, victim)
        for src, dst in moves:
            self.policy.on_move(src, dst)
        landing = self._install_bookkeeping(addr, part, victim, moves)
        self.policy.on_insert(landing, part, addr)
        return False


class ReferenceUMonitor(UMonitor):
    """UMON with the original access path: the set-index hash is
    recomputed on every observed access (no per-address sample
    cache).  Counts are identical; only the cost differs."""

    def access(self, addr: int) -> None:
        set_index = self._hash(addr)
        if set_index % self._period:
            return
        self.accesses += 1
        stack = self._stacks.get(set_index)
        if stack is None:
            stack = []
            self._stacks[set_index] = stack
        try:
            position = stack.index(addr)
        except ValueError:
            stack.insert(0, addr)
            if len(stack) > self.num_ways:
                stack.pop()
            return
        self.hits[position] += 1
        del stack[position]
        stack.insert(0, addr)


class ReferenceUCPPolicy(UCPPolicy):
    """UCP policy with the original unconditional observe path."""

    def observe(self, part: int, addr: int) -> None:
        self.monitors[part].access(addr)


def as_reference_policy(policy: UCPPolicy) -> UCPPolicy:
    """Rebind a UCP policy and its monitors to the reference paths."""
    policy.__class__ = ReferenceUCPPolicy
    for monitor in policy.monitors:
        monitor.__class__ = ReferenceUMonitor
    return policy


#: Cache classes with a faithful reference implementation, used by
#: ``repro bench`` to rebuild a scheme on the reference miss path.
REFERENCE_CACHE_CLASSES = {
    VantageCache: ReferenceVantageCache,
    BaselineCache: ReferenceBaselineCache,
}


def as_reference_cache(cache):
    """Rebind ``cache`` to its reference implementation.

    The reference subclasses add behaviour only (no extra state), so a
    freshly built cache can be switched onto the original miss path by
    re-typing it.  Raises for schemes without a reference twin.
    """
    ref_cls = REFERENCE_CACHE_CLASSES.get(type(cache))
    if ref_cls is None:
        raise ValueError(
            f"no reference implementation for {type(cache).__name__}"
        )
    # A fused kernel installed by the concrete class would shadow the
    # re-typed class's access method; drop it along with the re-type.
    cache._remove_fused()
    cache.__class__ = ref_cls
    return cache


def reference_run(system, instructions_per_core: int) -> SystemResult:
    """The original heap-based event loop (pre-optimization).

    Behaviourally identical to :meth:`CMPSystem.run`; kept as the
    timing baseline for ``repro bench`` and as the oracle for the
    scheduler-equivalence tests.
    """
    config = system.config
    cache = system.cache
    policy = system.policy
    memory = system.memory
    l1s = system.l1s
    hit_latency = config.l2_hit_latency

    num_cores = config.num_cores
    iterators = [factory() for factory in system.trace_factories]
    instructions = [0] * num_cores
    instructions_at_finish = [0] * num_cores
    finished_at: list[float | None] = [None] * num_cores
    unfinished = num_cores

    heap: list[tuple[float, int]] = [(0.0, cid) for cid in range(num_cores)]
    heapq.heapify(heap)
    next_epoch = float(config.epoch_cycles)
    sample_period = system.size_sample_cycles
    next_sample = float(sample_period) if sample_period else None
    now = 0.0

    while unfinished:
        now, cid = heapq.heappop(heap)
        if policy is not None and now >= next_epoch:
            system._repartition()
            while now >= next_epoch:
                next_epoch += config.epoch_cycles
        if next_sample is not None and now >= next_sample:
            system.size_series.sample(
                int(now), system._target_lines(), cache.partition_sizes()
            )
            while now >= next_sample:
                next_sample += sample_period

        try:
            gap, addr = next(iterators[cid])
        except StopIteration:
            iterators[cid] = system.trace_factories[cid]()
            try:
                gap, addr = next(iterators[cid])
            except StopIteration:
                # Never let a raw StopIteration escape the event loop.
                raise ValueError(
                    f"trace for core {cid} is empty: its factory produced "
                    f"an iterator with no (gap, addr) items"
                ) from None

        instructions[cid] += gap + 1
        t = now + gap + 1

        if l1s is not None and l1s[cid].access(addr):
            pass  # L1 hit: fully pipelined, no stall.
        else:
            if policy is not None:
                policy.observe(cid, addr)
            if cache.access(addr, cid):
                t += hit_latency
            else:
                t += hit_latency + memory.request(addr, t)

        if finished_at[cid] is None and instructions[cid] >= instructions_per_core:
            finished_at[cid] = t
            instructions_at_finish[cid] = instructions[cid]
            unfinished -= 1
        heapq.heappush(heap, (t, cid))

    cores = [
        CoreResult(
            instructions=instructions_at_finish[cid],
            cycles=now,
            finished_at=finished_at[cid],
        )
        for cid in range(num_cores)
    ]
    miss_rates = [cache.stats.miss_rate(p) for p in range(cache.num_partitions)]
    return SystemResult(cores=cores, total_cycles=now, l2_miss_rates=miss_rates)
