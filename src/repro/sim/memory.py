"""Memory-controller model: zero-load latency plus bandwidth queueing.

Table 2 specifies 4 memory controllers, 200 cycles of zero-load
latency and a peak bandwidth.  Each controller serialises line
transfers at its share of the peak bandwidth; a request arriving while
its controller is busy queues behind the in-flight transfers, which is
how memory-bandwidth contention degrades thrashing mixes.
"""

from __future__ import annotations


class MemoryModel:
    """Bandwidth-limited multi-controller memory."""

    __slots__ = (
        "num_controllers",
        "latency",
        "service_cycles",
        "_free_at",
        "requests",
        "total_queue_cycles",
    )

    def __init__(
        self,
        num_controllers: int = 4,
        latency: int = 200,
        bytes_per_cycle: float = 16.0,
        line_bytes: int = 64,
    ):
        if num_controllers <= 0:
            raise ValueError("num_controllers must be positive")
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.num_controllers = num_controllers
        self.latency = latency
        # Cycles one controller needs to stream one line.
        self.service_cycles = line_bytes / (bytes_per_cycle / num_controllers)
        self._free_at = [0.0] * num_controllers
        self.requests = 0
        self.total_queue_cycles = 0.0

    def request(self, line_addr: int, now: float) -> float:
        """Issue a line fill at time ``now``; returns its total latency."""
        self.requests += 1
        ctrl = line_addr % self.num_controllers
        start = self._free_at[ctrl] if self._free_at[ctrl] > now else now
        self._free_at[ctrl] = start + self.service_cycles
        queue = start - now
        self.total_queue_cycles += queue
        return queue + self.latency

    @property
    def mean_queue_cycles(self) -> float:
        return self.total_queue_cycles / self.requests if self.requests else 0.0
