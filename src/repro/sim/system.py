"""Trace-driven CMP simulation (the paper's evaluation substrate).

``CMPSystem`` interleaves per-core access traces over a shared L2 in
global cycle order: in-order cores execute at IPC = 1 between memory
events (the paper's Atom-like cores) and stall for the full L2 or
memory latency on each access, so all performance differences between
partitioning schemes come from L2 hit/miss behaviour -- exactly the
paper's setup.

Traces may be *post-L1* (each item is an L2 access preceded by a gap
of non-memory/ L1-hit instructions; the default, and what the workload
generators produce) or *memory-instruction level* with ``use_l1=True``
to filter through private L1 models.

Every ``epoch_cycles`` the system invokes the allocation policy (UCP),
installs the new targets in the cache, re-runs PIPP's stream
classification, and optionally samples target/actual partition sizes
for Figure 8-style time series.

Requester vs owner
------------------
Every access carries the *requesting* core: the ``cid`` threaded from
the event loop into ``policy.observe(cid, addr)`` and
``cache.access(addr, cid)``.  On multiprogrammed mixes each core's
trace lives in a disjoint address-space slice (``core << 44``), so the
requester and the line's owning partition always coincide.  Shared-
region mixes (:class:`~repro.workloads.SharedRegionSpec`) break that
identity on purpose: several cores issue the same line addresses, and
a hit's requester may differ from the ``part_of`` owner recorded at
install time.  The event loop itself needs no cases for this -- the
requester is simply an argument -- while the cache's on-shared-hit
policy (``shared_policy``) decides whether ownership follows the
requester, and reuse-aware UCP classifies such accesses separately.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field

from repro import telemetry
from repro.analysis.stats import SizeTimeSeries
from repro.partitioning.base_cache import (
    BatchContext,
    batch_default,
    fastfwd_default,
    fastfwd_tolerance,
)
from repro.sim.configs import SystemConfig
from repro.sim.l1 import L1Cache
from repro.sim.memory import MemoryModel
from repro.traces import TraceSpec, get_store
from repro.traces.chunks import chunk_array_view


@dataclass
class CoreResult:
    """Outcome of one core's run."""

    instructions: int
    cycles: float
    finished_at: float | None

    @property
    def ipc(self) -> float:
        cycles = self.finished_at if self.finished_at is not None else self.cycles
        return self.instructions / cycles if cycles else 0.0


@dataclass
class SystemResult:
    """Outcome of a whole-mix simulation."""

    cores: list[CoreResult]
    total_cycles: float
    l2_miss_rates: list[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Sum of per-core IPCs (the paper's headline metric)."""
        return sum(core.ipc for core in self.cores)


class CMPSystem:
    """Cores + private L1s + shared partitioned L2 + memory.

    Parameters
    ----------
    cache:
        Any :class:`~repro.partitioning.base_cache.PartitionedCache`.
    traces:
        One iterable factory per core: calling ``factory()`` returns a
        fresh (infinite or restartable) iterator of ``(gap, addr)``
        pairs, ``gap`` being the instructions executed since the
        previous item.
    config:
        A :class:`~repro.sim.configs.SystemConfig`.
    policy:
        Optional allocation policy with ``observe(part, addr)`` and
        ``allocate() -> units``; invoked every ``config.epoch_cycles``.
    use_l1:
        Route trace items through private L1 models (trace items are
        then memory instructions, not L2 accesses).
    size_series / size_sample_cycles:
        Optional :class:`SizeTimeSeries` sampled on the given period.
    use_chunks:
        Feed cores whose factory is a :class:`~repro.traces.TraceSpec`
        from the compiled chunk store instead of calling their
        generators per event.  ``None`` (default) reads
        ``REPRO_TRACE_CHUNKS`` (on unless set to ``0``).  Both feeds
        produce bitwise-identical results (asserted by the parity
        tests); plain callables always use the generator path.
    use_fastfwd / fastfwd_tol:
        Analytical fast-forward of converged epoch tails (see
        :mod:`repro.sim.fastfwd`).  ``use_fastfwd=None`` reads
        ``REPRO_FASTFWD`` (*off* unless ``1``); ``fastfwd_tol=None``
        reads ``REPRO_FASTFWD_TOL`` (detector tolerance; ``0`` =
        detection-only mode that logs triggers but skips nothing).
        Requires the batch layer; ineligible configurations decline
        with a recorded reason instead of diverging.
    """

    def __init__(
        self,
        cache,
        traces,
        config: SystemConfig,
        policy=None,
        use_l1: bool = False,
        size_series: SizeTimeSeries | None = None,
        size_sample_cycles: int | None = None,
        use_chunks: bool | None = None,
        use_batch: bool | None = None,
        use_fastfwd: bool | None = None,
        fastfwd_tol: float | None = None,
    ):
        self.cache = cache
        self.trace_factories = list(traces)
        if len(self.trace_factories) != config.num_cores:
            raise ValueError(
                f"{config.num_cores} cores need {config.num_cores} traces, "
                f"got {len(self.trace_factories)}"
            )
        self.config = config
        self.policy = policy
        self.use_l1 = use_l1
        self.l1s = [
            L1Cache(config.l1_bytes, config.l1_ways, config.line_bytes)
            for _ in range(config.num_cores)
        ] if use_l1 else None
        self.memory = MemoryModel(
            num_controllers=config.mem_controllers,
            latency=config.mem_latency,
            bytes_per_cycle=config.mem_bytes_per_cycle,
            line_bytes=config.line_bytes,
        )
        self.size_series = size_series
        self.size_sample_cycles = size_sample_cycles
        self._last_units: list[int] | None = None
        # Telemetry counters (see repro.telemetry).  The L1 counter
        # lives on the event loop's hot path, so it is gated by the
        # construction-time ``_collect`` flag; stall cycles cost
        # nothing because they are *derived* after the run (cores
        # advance one cycle per instruction, so time minus instructions
        # is exactly the stall total); epoch/sample counters are
        # per-epoch and always maintained.
        self._collect = telemetry.enabled()
        if use_chunks is None:
            use_chunks = os.environ.get("REPRO_TRACE_CHUNKS", "1") != "0"
        self._use_chunks = use_chunks
        if use_batch is None:
            use_batch = batch_default()
        # Batching layers on top of the fused kernels: with
        # ``REPRO_FUSED=0`` the object path stays the oracle, so the
        # batch layer switches off with it (and with caches that have
        # no fused kernel installed).
        self._use_batch = use_batch and bool(getattr(cache, "fused", False))
        # Analytical fast-forward (repro.sim.fastfwd): off by default;
        # rides the batch layer, so it switches off with it.  The layer
        # itself may still decline at run time (``fastfwd.decline_reason``).
        if use_fastfwd is None:
            use_fastfwd = fastfwd_default()
        self._use_fastfwd = use_fastfwd and self._use_batch
        self._fastfwd_tol = (
            fastfwd_tol if fastfwd_tol is not None else fastfwd_tolerance()
        )
        #: The run's :class:`~repro.sim.fastfwd.FastForward` instance
        #: (None until a fast-forward-requested run starts).
        self.fastfwd = None
        self.batch_calls = 0
        #: which batch lane the last run used: "numpy" (vectorized),
        #: "python" (pure-python mega kernel) or None (no batching).
        self.batch_kind: str | None = None
        self._final_times = [0.0] * config.num_cores
        self._instruction_counts = [0] * config.num_cores
        self.l1_hits = [0] * config.num_cores
        self.trace_chunks = [0] * config.num_cores
        self.epochs = 0
        self.samples = 0

    # ------------------------------------------------------------------

    def _target_lines(self) -> list[int]:
        """Last allocation, converted to lines for time-series capture."""
        cache = self.cache
        units = self._last_units
        if units is None:
            if hasattr(cache, "target"):
                return list(cache.target)
            return [0] * cache.num_partitions
        if cache.allocation_unit == "ways":
            lines_per_way = cache.num_lines // cache.array.num_ways
            return [u * lines_per_way for u in units]
        return list(units)

    def _repartition(self) -> None:
        self.epochs += 1
        units = self.policy.allocate()
        self._last_units = units
        self.cache.set_allocations(units)
        if hasattr(self.cache, "reclassify_streams"):
            self.cache.reclassify_streams()

    def stall_cycles(self) -> list[float]:
        """Per-core cycles stalled on L2/memory, derived post-run."""
        return [
            t - n for t, n in zip(self._final_times, self._instruction_counts)
        ]

    def register_stats(self, group) -> None:
        """Register the system's counters into a stats tree group."""
        group.stat(
            "stall_cycles",
            self.stall_cycles,
            "per-core cycles stalled on L2/memory (derived post-run)",
        )
        group.stat(
            "l1_hits",
            lambda: list(self.l1_hits),
            "per-core accesses filtered by the private L1s",
        )
        group.stat(
            "trace_chunks",
            lambda: list(self.trace_chunks),
            "per-core trace chunks fetched from the chunk store",
        )
        group.stat(
            "epochs",
            lambda: self.epochs,
            "allocation epochs (policy invocations)",
        )
        group.stat(
            "size_samples",
            lambda: self.samples,
            "partition-size time-series samples taken",
        )
        if self._use_fastfwd:
            # Registered only when fast-forward was requested, so the
            # default stats tree (and the golden snapshots pinning it)
            # is untouched.  Values pull through ``self.fastfwd``
            # lazily: the instance only exists once ``run`` starts.
            f = group.group("fastfwd", "analytical fast-forward layer")

            def _ff(name, default=0):
                return lambda: getattr(self.fastfwd, name, default)

            f.stat(
                "active",
                lambda: self.fastfwd is not None and self.fastfwd.enabled,
                "the layer accepted the configuration at run start",
            )
            f.stat(
                "decline_reason",
                _ff("decline_reason", None),
                "why the layer declined (None when active)",
            )
            f.stat(
                "detect_only",
                _ff("detect_only", False),
                "REPRO_FASTFWD_TOL=0: log triggers, never skip",
            )
            f.stat("windows", _ff("windows"), "detector windows measured")
            f.stat("triggers", _ff("triggers"), "times the detector fired")
            f.stat("skips", _ff("skips"), "model replays committed")
            f.stat(
                "aborts",
                _ff("aborts"),
                "fired triggers whose plan was rejected (exact sim resumed)",
            )
            f.stat(
                "skipped_accesses",
                _ff("skipped_accesses"),
                "accesses replayed through the model instead of simulated",
            )
            f.stat(
                "would_skip_accesses",
                _ff("would_skip_accesses"),
                "accesses a skip would have covered (detection-only)",
            )
            f.stat(
                "skipped_fraction",
                lambda: (
                    self.fastfwd.skipped_fraction() if self.fastfwd else 0.0
                ),
                "skipped_accesses over all accesses",
            )

    def _build_batch_kernel(
        self,
        target: int,
        bufs: list,
        positions: list,
        limits: list,
        instructions: list,
        finished_at: list,
        instructions_at_finish: list,
        times: list,
        heap: list | None,
        batched: list,
    ):
        """Build the cache's whole-loop batch kernel, or ``None`` when
        the cache class has none registered (or declines, e.g. because
        an eviction hook is installed).

        The :class:`BatchContext` hands the kernels everything the
        event loop touches: the access-body collaborators plus the
        *live* scheduler state of this ``run`` invocation (cursors,
        instruction counters, core times), shared by reference.  When
        the policy is a stock :class:`~repro.allocation.ucp.UCPPolicy`,
        its ``observe`` is exploded into the per-partition sample
        filters and monitor methods so the kernels can inline the
        sampled-set early exit (the overwhelmingly common case)
        without a bound call.
        """
        from repro.allocation.static import EqualSharePolicy, StaticPolicy
        from repro.allocation.ucp import UCPPolicy

        policy = self.policy
        observe = policy.observe if policy is not None else None
        sample_gets = observed = mon_accesses = None
        if observe is not None and type(policy).observe in (
            StaticPolicy.observe,
            EqualSharePolicy.observe,
        ):
            # Static allocators observe nothing; dropping the no-op
            # call keeps the kernels' per-access path tight and lets
            # the vectorized lane accept these configurations.
            observe = None
        if isinstance(policy, UCPPolicy) and type(policy).observe is UCPPolicy.observe:
            sample_gets = policy._sample_gets
            observed = policy.observed
            mon_accesses = [m.access for m in policy.monitors]
            observe = None
        memory = self.memory
        ctx = BatchContext(
            hit_latency=self.config.l2_hit_latency,
            memory=memory,
            observe=observe,
            sample_gets=sample_gets,
            observed=observed,
            mon_accesses=mon_accesses,
            l1s=self.l1s,
            collect=self._collect,
            l1_hits=self.l1_hits,
            exact_int_times=float(memory.service_cycles).is_integer(),
            num_cores=self.config.num_cores,
            target=target,
            bufs=bufs,
            positions=positions,
            limits=limits,
            instructions=instructions,
            finished_at=finished_at,
            instructions_at_finish=instructions_at_finish,
            times=times,
            heap=heap,
            batched=batched,
        )
        return self.cache.build_batch_kernel(ctx)

    def _restart_trace(self, cid: int, iterators: list, nexts: list):
        """Restart core ``cid``'s finite trace and return its first
        item.  A factory that produces an *empty* iterator raises a
        ``ValueError`` naming the core -- never a raw ``StopIteration``
        escaping the event loop."""
        it = self.trace_factories[cid]()
        iterators[cid] = it
        nexts[cid] = it.__next__
        try:
            return it.__next__()
        except StopIteration:
            raise ValueError(
                f"trace for core {cid} is empty: its factory produced an "
                f"iterator with no (gap, addr) items"
            ) from None

    def run(self, instructions_per_core: int) -> SystemResult:
        """Simulate until every core has executed the target
        instruction count; IPC is measured at each core's crossing
        point, as in the paper.

        This is the optimized event loop (the original is preserved as
        :func:`repro.sim.reference.reference_run`); both produce
        identical results, which ``tests/sim/test_reference_parity.py``
        asserts.  Three strength reductions over the reference:

        - cores with few peers are scheduled by a linear two-minimum
          scan instead of a heap -- strict ``<`` picks the lowest core
          ID among ties, matching the ``(t, cid)`` heap ordering -- and
          the epoch/sample checks collapse into one ``next_service``
          compare per event;
        - *run continuation*: after an event, if the core's new time is
          still ahead of every other core (same ``(t, cid)`` order a
          heap pop would use), the loop keeps consuming that core's
          trace without re-selecting -- bursty low-gap cores execute
          long runs with no scheduling work at all;
        - the *chunk cursor*: cores whose trace factory is a
          :class:`~repro.traces.TraceSpec` read ``(gap, addr)`` pairs
          by index out of flat buffers compiled ahead of time by the
          trace store, instead of resuming a generator frame per event;
          refills happen out of the hot loop, once per 64K-pair chunk.
        """
        config = self.config
        cache = self.cache
        policy = self.policy
        memory = self.memory
        l1s = self.l1s
        hit_latency = config.l2_hit_latency
        epoch_cycles = config.epoch_cycles

        num_cores = config.num_cores
        trace_factories = self.trace_factories
        store = get_store() if self._use_chunks else None
        chunked = [
            store is not None and isinstance(factory, TraceSpec)
            for factory in trace_factories
        ]
        iterators: list = [None] * num_cores
        nexts: list = [None] * num_cores
        bufs: list = [()] * num_cores
        positions = [0] * num_cores
        limits = [0] * num_cores
        next_chunk = [0] * num_cores
        trace_chunks = self.trace_chunks

        instructions = [0] * num_cores
        instructions_at_finish = [0] * num_cores
        finished_at: list[float | None] = [None] * num_cores
        unfinished = num_cores

        times = [0.0] * num_cores
        use_heap = num_cores > 8
        heap: list[tuple[float, int]] | None = None
        if use_heap:
            heap = [(0.0, cid) for cid in range(num_cores)]
            heapq.heapify(heap)
            heappush = heapq.heappush
            heappop = heapq.heappop

        # ``batched`` is filled in only after a kernel builds, so the
        # kernels themselves can rely on it: a False entry sends the
        # core to the single-access path (reason 4).
        batched = [False] * num_cores
        batch_kernel = None
        if self._use_batch and any(chunked):
            batch_kernel = self._build_batch_kernel(
                instructions_per_core,
                bufs,
                positions,
                limits,
                instructions,
                finished_at,
                instructions_at_finish,
                times,
                heap,
                batched,
            )
        if batch_kernel is not None:
            for cid in range(num_cores):
                batched[cid] = chunked[cid]
        self.batch_kind = (
            None
            if batch_kernel is None
            else ("numpy" if getattr(batch_kernel, "vectorized", False) else "python")
        )
        # Vectorized kernels additionally read chunks as int64 ndarray
        # views; their buffers are (list, ndarray) pairs.
        need_arrays = batch_kernel is not None and getattr(
            batch_kernel, "chunk_arrays", False
        )

        ff = None
        if self._use_fastfwd:
            from repro.sim.fastfwd import FastForward

            self.fastfwd = FastForward(
                self,
                batch_kernel,
                chunked,
                bufs,
                positions,
                limits,
                instructions,
                finished_at,
                times,
                heap,
                instructions_per_core,
                self._fastfwd_tol,
            )
            if self.fastfwd.enabled:
                ff = self.fastfwd

        def _refill(cid: int):
            # One store lookup (LRU / disk / compile) per chunk keeps
            # trace production out of the hot loop entirely.  A stream
            # that ends (or is empty) surfaces as the same core-naming
            # ValueError the generator cursor raises -- never a raw
            # StopIteration or an anonymous compile error.
            factory = trace_factories[cid]
            index = next_chunk[cid]
            try:
                buf = store.chunk_list(factory, index)
            except StopIteration:
                raise ValueError(
                    f"trace for core {cid} is empty: its factory produced "
                    f"an iterator with no (gap, addr) items"
                ) from None
            except ValueError as exc:
                raise ValueError(f"trace for core {cid}: {exc}") from None
            limit = len(buf)
            if need_arrays:
                buf = (buf, chunk_array_view(store.get_chunk(factory, index)))
            next_chunk[cid] += 1
            trace_chunks[cid] += 1
            bufs[cid] = buf
            limits[cid] = limit
            positions[cid] = 0
            return buf

        for cid, factory in enumerate(trace_factories):
            if chunked[cid]:
                _refill(cid)  # preload each core's first chunk
            else:
                it = factory()
                iterators[cid] = it
                nexts[cid] = it.__next__

        inf = float("inf")
        next_epoch = float(epoch_cycles) if policy is not None else inf
        sample_period = self.size_sample_cycles
        next_sample = float(sample_period) if sample_period else inf
        next_service = next_epoch if next_epoch < next_sample else next_sample
        now = 0.0

        cache_access = cache.access
        mem_request = memory.request
        observe = policy.observe if policy is not None else None
        collect = self._collect
        l1_hits = self.l1_hits

        while unfinished:
            if batch_kernel is not None:
                # Whole-loop dispatch: one kernel call runs scheduling
                # events until a boundary only this loop can handle.
                # With fast-forward enabled, detector windows are extra
                # reason-1 stops below the real service time: the
                # kernel parks identically, so they are free of side
                # effects on the simulation itself.
                self.batch_calls += 1
                if ff is not None and ff.next_window < next_service:
                    call_service = ff.next_window
                else:
                    call_service = next_service
                now, unfinished, reason, cid = batch_kernel(
                    call_service, unfinished
                )
                if reason == 1:
                    if now < next_service:
                        # Window boundary only: measure, maybe replay.
                        ff.on_window(now, next_epoch, next_sample)
                        continue
                    # Epoch/sample service due at ``now``; the kernel
                    # parked the in-flight core, so re-entry resumes it
                    # through the ordinary selection scan.
                    if now >= next_epoch:
                        self._repartition()
                        while now >= next_epoch:
                            next_epoch += epoch_cycles
                        if ff is not None:
                            # New targets: restart the window grid and
                            # drop the stale convergence evidence.
                            ff.on_epoch(now)
                    if now >= next_sample:
                        self.samples += 1
                        self.size_series.sample(
                            int(now), self._target_lines(), cache.partition_sizes()
                        )
                        while now >= next_sample:
                            next_sample += sample_period
                    next_service = (
                        next_epoch if next_epoch < next_sample else next_sample
                    )
                    continue
                if reason == 2:
                    _refill(cid)
                    continue
                if reason == 3:
                    break
                # reason 4: core ``cid`` is not chunked -- fall through
                # and run one event on the single-access path (the scan
                # below re-selects it).

            if use_heap:
                now, cid = heappop(heap)
                second = scid = None
            else:
                # Two-minimum scan: the runner-up (`second`, `scid`) is
                # what the continuation check compares against; strict
                # `<` keeps the lowest ID on ties in both minima,
                # matching (t, cid) heap order.
                now = times[0]
                cid = 0
                second = inf
                scid = 0
                for i in range(1, num_cores):
                    ti = times[i]
                    if ti < now:
                        second = now
                        scid = cid
                        now = ti
                        cid = i
                    elif ti < second:
                        second = ti
                        scid = i

            chunk = chunked[cid]
            pos = positions[cid]
            limit = limits[cid]
            buf = bufs[cid]

            while True:
                if now >= next_service:
                    if now >= next_epoch:
                        self._repartition()
                        while now >= next_epoch:
                            next_epoch += epoch_cycles
                    if now >= next_sample:
                        self.samples += 1
                        self.size_series.sample(
                            int(now), self._target_lines(), cache.partition_sizes()
                        )
                        while now >= next_sample:
                            next_sample += sample_period
                    next_service = (
                        next_epoch if next_epoch < next_sample else next_sample
                    )

                if chunk:
                    if pos >= limit:
                        buf = _refill(cid)
                        limit = limits[cid]
                        pos = 0
                    gap = buf[pos]
                    addr = buf[pos + 1]
                    pos += 2
                else:
                    try:
                        gap, addr = nexts[cid]()
                    except StopIteration:
                        gap, addr = self._restart_trace(cid, iterators, nexts)

                count = instructions[cid] + gap + 1
                instructions[cid] = count
                t = now + gap + 1

                if l1s is not None and l1s[cid].access(addr):
                    # L1 hit: fully pipelined, no stall.
                    if collect:
                        l1_hits[cid] += 1
                else:
                    if observe is not None:
                        observe(cid, addr)
                    if cache_access(addr, cid):
                        t += hit_latency
                    else:
                        t += hit_latency + mem_request(addr, t)

                if count >= instructions_per_core and finished_at[cid] is None:
                    finished_at[cid] = t
                    instructions_at_finish[cid] = count
                    unfinished -= 1

                # Run continuation: keep executing this core while it
                # would be popped next anyway.
                if unfinished:
                    if use_heap:
                        head = heap[0]
                        second = head[0]
                        scid = head[1]
                    if t < second or (t == second and cid < scid):
                        now = t
                        continue
                break

            if chunk:
                positions[cid] = pos
            if use_heap:
                heappush(heap, (t, cid))
            else:
                times[cid] = t

        # Persist the loop's final per-core state so the stall-cycle
        # telemetry can be derived without any per-access accounting.
        if use_heap:
            for t, cid in heap:
                self._final_times[cid] = t
        else:
            self._final_times = list(times)
        self._instruction_counts = list(instructions)

        cores = [
            CoreResult(
                instructions=instructions_at_finish[cid],
                cycles=now,
                finished_at=finished_at[cid],
            )
            for cid in range(num_cores)
        ]
        miss_rates = [cache.stats.miss_rate(p) for p in range(cache.num_partitions)]
        return SystemResult(cores=cores, total_cycles=now, l2_miss_rates=miss_rates)
