"""Analytical fast-forward: skip converged epoch tails (``REPRO_FASTFWD``).

The paper's Sec 6.2 validation shows that once a partition's aperture
and churn stabilise, the Eq. 7 transfer function predicts Vantage's
behaviour without simulating it.  This module exploits that inside the
event loop: a :class:`ConvergenceDetector` watches per-partition
miss-rate / churn / aperture deltas over sliding sub-epoch windows
(cut into the batch-kernel dispatch as extra ``reason 1`` stops), and
once every partition is stable for ``K_WINDOWS`` consecutive windows,
:class:`FastForward` *replays* the rest of the epoch instead of
simulating it:

- the span is costed out in closed form first: the
  :class:`~repro.core.analytical.VantageModel` prices each core's
  remaining accesses (gap + hit latency + miss-rate-weighted memory
  latency with the window's mean queue delay) against the compiled
  chunk buffers (``segment_profile``) to find exactly which pairs fit
  before the epoch boundary, and the Eq. 7 transfer function
  cross-checks that the measured churn is still what the model
  predicts;
- *timing* state -- core clocks, instruction counters, memory
  requests and queueing -- then advances by those modelled costs
  without per-access event scheduling;
- *functional* state -- the line array, partition clocks, demotion /
  promotion / eviction registers, setpoints, and the sampled UMONs --
  advances by walking the skipped addresses through the cache's own
  transition functions, re-seeding the concrete footprint exactly at
  a fraction of a simulated access's cost;
- the skip ends at the next epoch (or size-sample) boundary, where
  the re-seeded concrete state resumes exact simulation.

Fast-forward is *opt-in* (``REPRO_FASTFWD=1``): the default path stays
bitwise-identical across the whole existing flag cube, and even when
enabled the layer declines any configuration whose extra state it
cannot model (shared-hit policies, L1 filtering, non-UCP observers,
non-chunked cores, caches without a parking batch kernel).
``REPRO_FASTFWD_TOL=0`` selects detection-only mode: the detector and
planner run and log where a skip *would* happen, but every access is
still simulated.  A plan whose validation fails (per-core access
shares drifting from the converged window, or the measured churn
disagreeing with the Eq. 7 forecast) aborts back to exact simulation
with no state mutated.
"""

from __future__ import annotations

import heapq

from repro.traces.chunks import segment_profile

try:  # soft dependency: every numpy path has a scalar twin
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

#: Sub-epoch detector windows per allocation epoch.
WINDOWS_PER_EPOCH = 16
#: Consecutive stable windows required before a skip.
K_WINDOWS = 2
#: Detector tolerance used when ``REPRO_FASTFWD_TOL=0`` selects
#: detection-only mode (the tolerance itself must stay meaningful).
DETECT_TOL = 0.02
#: z-score of the binomial sampling-noise allowance added to the
#: tolerance: sub-epoch windows hold a few dozen accesses, so two
#: windows of the *same* converged process still differ by
#: O(sqrt(p(1-p)/n)); a fixed tolerance would either never fire at
#: realistic window sizes or be meaninglessly loose at large ones.
NOISE_Z = 2.5
#: Windows with fewer accesses than this are "quiet": they carry no
#: rate information, so they neither confirm nor break convergence.
MIN_WINDOW_ACCESSES = 16
#: Skips shorter than this are not worth the commit overhead.
MIN_SKIP_ACCESSES = 64
#: Max drift of a core's in-span access share vs its converged-window
#: share before the plan is rejected as de-converged.
SHARE_DRIFT = 0.10
#: Max relative disagreement between the window-scaled demotion count
#: and the Eq. 7 forecast before the plan is rejected.
MODEL_DRIFT = 0.75
#: Demotion-count floor below which the model-drift check is noise.
MODEL_DRIFT_FLOOR = 8
#: Pairs profiled per ``segment_profile`` block during planning.
_PROFILE_PAIRS = 512
_TS_MASK = 255

_INF = float("inf")


def _scaled(value: float) -> int:
    """Nearest-integer scaling for extrapolated counters."""
    return int(value + 0.5)


class ConvergenceDetector:
    """Declares an epoch tail converged after ``k`` consecutive stable
    windows.

    A window is *stable* when every partition's miss rate, churn rate
    (demotions per access) and aperture match the previous window's
    within tolerance.  Miss and churn are rates of a sampled process:
    their tolerance is ``tol`` plus a ``NOISE_Z``-sigma binomial
    allowance for the window sizes involved, so genuine convergence is
    recognised at realistic (few-dozen-access) windows without ever
    accepting a drift larger than the noise floor explains.  Apertures
    are deterministic registers and compare against ``tol`` alone.
    Quiet partitions (fewer than ``min_accesses`` accesses) carry no
    rate information: two quiet windows compare stable, but a
    partition flipping between quiet and active is a phase change and
    breaks the streak.  A target change (``set_allocations``) resets
    the baseline entirely -- the transfer function is about to move
    every aperture.
    """

    def __init__(
        self,
        num_partitions: int,
        tol: float = DETECT_TOL,
        k: int = K_WINDOWS,
        min_accesses: int = MIN_WINDOW_ACCESSES,
    ):
        if tol <= 0:
            raise ValueError("detector tol must be positive")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.num_partitions = num_partitions
        self.tol = tol
        self.k = k
        self.min_accesses = min_accesses
        self.streak = 0
        self._prev: list[tuple[float, float, float, int] | None] | None = None
        self._targets: tuple[int, ...] | None = None

    def reset(self) -> None:
        self.streak = 0
        self._prev = None

    def _rates_match(self, ra, na, rb, nb) -> bool:
        """Two rate estimates agree within tol + NOISE_Z sigmas of the
        pooled binomial standard error."""
        pooled = (ra * na + rb * nb) / (na + nb)
        if pooled < 0.0:
            pooled = 0.0
        elif pooled > 1.0:
            pooled = 1.0
        sigma = (pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb)) ** 0.5
        return abs(ra - rb) <= self.tol + NOISE_Z * sigma

    def observe(self, accesses, misses, demotions, apertures, targets) -> bool:
        """Feed one window's per-partition deltas; True when the streak
        reaches ``k`` (the tail is converged)."""
        targets = tuple(targets)
        if targets != self._targets:
            self._targets = targets
            self.reset()
        rates: list[tuple[float, float, float, int] | None] = []
        for p in range(self.num_partitions):
            a = accesses[p]
            if a < self.min_accesses:
                rates.append(None)
            else:
                rates.append(
                    (misses[p] / a, demotions[p] / a, apertures[p], a)
                )
        prev = self._prev
        self._prev = rates
        if prev is None:
            self.streak = 0
            return False
        stable = True
        for p in range(self.num_partitions):
            a = prev[p]
            b = rates[p]
            if a is None and b is None:
                continue
            if a is None or b is None:
                stable = False
                break
            if (
                not self._rates_match(a[0], a[3], b[0], b[3])
                or not self._rates_match(a[1], a[3], b[1], b[3])
                or abs(a[2] - b[2]) > self.tol
            ):
                stable = False
                break
        self.streak = self.streak + 1 if stable else 0
        return self.streak >= self.k


class FastForward:
    """Window stream + model replay over one ``CMPSystem.run``.

    Built by :meth:`CMPSystem.run` after the batch kernel; holds the
    run's *live* scheduler state by reference (cursors, instruction
    counters, core times), exactly like the kernels do.  When the
    configuration is not modellable, ``enabled`` is False and
    ``decline_reason`` says why -- the run proceeds exactly as without
    the layer.
    """

    def __init__(
        self,
        system,
        kernel,
        chunked,
        bufs,
        positions,
        limits,
        instructions,
        finished_at,
        times,
        heap,
        target: int,
        tol: float,
    ):
        self.system = system
        self.cache = system.cache
        self.policy = system.policy
        self.memory = system.memory
        self.config = system.config
        self._bufs = bufs
        self._positions = positions
        self._limits = limits
        self._instructions = instructions
        self._finished_at = finished_at
        self._times = times
        self._heap = heap
        self._target = target
        self.detect_only = tol == 0
        self.window_cycles = system.config.epoch_cycles / WINDOWS_PER_EPOCH
        self.next_window = self.window_cycles
        self.window_index = 0
        self.windows = 0
        self.triggers = 0
        self.skips = 0
        self.aborts = 0
        self.skipped_accesses = 0
        self.would_skip_accesses = 0
        self.events: list[dict] = []
        self._snapshot = None
        self._stable_base = None
        self._epoch_done = False
        self._free_slots: list[int] | None = None
        self._np_views = None
        self.last_decline: str | None = None
        self.model = None
        self.decline_reason = self._eligibility(kernel, chunked)
        self.enabled = self.decline_reason is None
        if not self.enabled:
            return
        self.monitors = self.policy.monitors
        self.detector = ConvergenceDetector(
            self.cache.num_partitions,
            tol=tol if tol > 0 else DETECT_TOL,
        )

    # ------------------------------------------------------------------
    # Eligibility.
    # ------------------------------------------------------------------

    def _eligibility(self, kernel, chunked) -> str | None:
        """Why this run cannot be fast-forwarded, or None when it can.

        Everything the replay extrapolates must be the *whole* state
        the skipped accesses would have touched; any collaborator with
        state the model does not cover declines the layer (honestly,
        via ``decline_reason``) rather than silently diverging.
        """
        from repro.allocation.ucp import UCPPolicy

        system = self.system
        cache = self.cache
        policy = self.policy
        if kernel is None:
            return "no batch kernel (REPRO_BATCH/REPRO_FUSED off or unsupported cache)"
        if not getattr(kernel, "parks_state", False):
            return "batch kernel does not guarantee parked state at service stops"
        builder = getattr(cache, "model_for_fastfwd", None)
        model = builder() if builder is not None else None
        if model is None:
            return (
                f"{type(cache).__name__} has no transfer-function model "
                f"(stock VantageCache only)"
            )
        self.model = model
        if getattr(cache, "shared_policy", None) is not None:
            return "shared-hit policy installed (requester/owner split not modelled)"
        if system.l1s is not None:
            return "L1 filtering enabled (L1 state not modelled)"
        if policy is None:
            return "no allocation policy (no epochs to fast-forward within)"
        if not isinstance(policy, UCPPolicy) or type(policy).observe is not UCPPolicy.observe:
            return "policy observer not modellable (needs stock UCPPolicy.observe)"
        num_cores = system.config.num_cores
        if cache.num_partitions != num_cores or len(policy.monitors) != num_cores:
            return "requester/partition identity does not hold (cores != partitions)"
        if not all(chunked):
            return "not all cores on the compiled-chunk path"
        return None

    # ------------------------------------------------------------------
    # Window stream.
    # ------------------------------------------------------------------

    def on_epoch(self, now: float) -> None:
        """An allocation epoch was just serviced: restart the window
        grid from here and drop all convergence evidence (the new
        targets invalidate it anyway)."""
        self.window_index = 0
        self._epoch_done = False
        self.next_window = now + self.window_cycles
        self._snapshot = None
        self._stable_base = None
        if self.enabled:
            self.detector.reset()

    def on_window(self, now: float, next_epoch: float, next_sample: float) -> None:
        """A window boundary fired inside the epoch: measure, detect,
        and -- when converged -- plan and (unless detection-only)
        commit a model replay of the rest of the epoch."""
        while self.next_window <= now:
            self.next_window += self.window_cycles
        self.windows += 1
        self.window_index += 1
        prev = self._snapshot
        cur = self._snapshot_counters()
        self._snapshot = cur
        if prev is None:
            self._stable_base = cur
            return
        if self._epoch_done:
            return
        cache = self.cache
        delta = self._delta(cur, prev)
        apertures = [
            self.model.aperture(cache.actual_size[p], cache.target[p])
            for p in range(cache.num_partitions)
        ]
        fired = self.detector.observe(
            delta["acc"], delta["misses"], delta["dem"], apertures, cache.target
        )
        if self.detector.streak == 0:
            # The measured window broke the streak: the stable region
            # restarts at that window's start (its rates are the new
            # comparison baseline).
            self._stable_base = prev
        if not fired:
            return
        self.triggers += 1
        # Plan and extrapolate from the *pooled* stable region (the
        # baseline window plus the whole streak), not the last window
        # alone: the pooled rates carry several times the samples, and
        # sampling noise in the extrapolated rates is what costs
        # accuracy over a long skip.
        pooled = self._delta(cur, self._stable_base)
        plan = self._plan(now, next_epoch, next_sample, pooled)
        if plan is None:
            self.aborts += 1
            self._record("abort", now, 0)
            self.detector.reset()
            return
        if self.detect_only:
            self._epoch_done = True
            self.would_skip_accesses += plan["n_total"]
            self._record("detect", now, plan["n_total"])
            return
        self._commit(plan)
        self.skips += 1
        self.skipped_accesses += plan["n_total"]
        self._record("skip", now, plan["n_total"])
        # Nothing left to detect in this epoch: jump the window grid to
        # the skip boundary so the next stop is the epoch service.
        self.next_window = plan["boundary"]
        self.detector.reset()
        self._snapshot = None

    def _record(self, action: str, now: float, accesses: int) -> None:
        self.events.append(
            {
                "action": action,
                "epoch": self.system.epochs,
                "window": self.window_index,
                "cycle": now,
                "accesses": accesses,
                "reason": self.last_decline if action == "abort" else None,
            }
        )

    def _delta(self, cur: dict, base: dict) -> dict:
        """Counter deltas ``cur - base`` with ``_snapshot_counters``'s
        key structure."""
        num = self.cache.num_partitions
        delta = {
            key: [cur[key][p] - base[key][p] for p in range(num)]
            for key in ("acc", "misses", "dem", "mon")
        }
        delta["mem_req"] = cur["mem_req"] - base["mem_req"]
        delta["mem_q"] = cur["mem_q"] - base["mem_q"]
        return delta

    def _snapshot_counters(self) -> dict:
        cache = self.cache
        st = cache.stats
        mem = self.memory
        return {
            "acc": list(st.accesses),
            "misses": list(st.misses),
            "dem": list(cache.demotions),
            "mon": [m.accesses for m in self.monitors],
            "mem_req": mem.requests,
            "mem_q": mem.total_queue_cycles,
        }

    # ------------------------------------------------------------------
    # Planning: how far can the model carry us, and should it?
    # ------------------------------------------------------------------

    def _core_times(self) -> list[float]:
        heap = self._heap
        if heap is None:
            return list(self._times)
        times = [0.0] * self.config.num_cores
        for t, cid in heap:
            times[cid] = t
        return times

    def _plan(self, now, next_epoch, next_sample, delta) -> dict | None:
        """Cost out the skip span per core against the converged
        window's rates; None (with ``last_decline`` set) when the span
        is not modellable.  Pure: touches no simulator state, so a
        declined plan *is* the abort-to-exact-simulation path."""
        self.last_decline = None
        boundary = next_epoch if next_epoch < next_sample else next_sample
        if boundary == _INF:
            self.last_decline = "no epoch or sample boundary to skip to"
            return None
        if boundary - now < self.window_cycles:
            self.last_decline = "epoch tail shorter than one window"
            return None
        w_acc = delta["acc"]
        w_total = sum(w_acc)
        if w_total <= 0:
            self.last_decline = "converged window had no accesses"
            return None
        dreq = delta["mem_req"]
        qbar = delta["mem_q"] / dreq if dreq > 0 else 0.0
        hit_latency = self.config.l2_hit_latency
        mem_latency = self.memory.latency
        cache = self.cache
        num_cores = self.config.num_cores
        target = self._target
        times = self._core_times()
        finished_at = self._finished_at
        instructions = self._instructions
        bufs, positions, limits = self._bufs, self._positions, self._limits

        ns = [0] * num_cores
        gaps = [0] * num_cores
        t_end = [0.0] * num_cores
        pos_end = [0] * num_cores
        rates = [0.0] * num_cores
        capped = [False] * num_cores
        for cid in range(num_cores):
            t = times[cid]
            a = w_acc[cid]
            m = delta["misses"][cid] / a if a > 0 else 1.0
            rates[cid] = m
            cost = 1.0 + hit_latency + m * (mem_latency + qbar)
            buf = bufs[cid]
            pos = positions[cid]
            limit = limits[cid]
            # Instructions advance by gap+1 per access, and crossing
            # the finish line must happen in exact simulation (finish
            # times are reported, not modelled): cap this core's walk
            # one access short of its remaining budget.  A capped core
            # simply ends its span early and resumes exact simulation
            # from there; the other cores still replay to the boundary.
            # Cores that already finished keep executing for contention
            # (the run ends only when *every* core crosses), so their
            # post-finish accesses replay without a cap.
            budget = (
                target - instructions[cid]
                if finished_at[cid] is None
                else _INF
            )
            n = 0
            g_sum = 0
            while t < boundary and pos < limit:
                pairs, gsum = segment_profile(buf, pos, limit, _PROFILE_PAIRS)
                est = gsum + pairs * cost
                if t + est < boundary and g_sum + n + gsum + pairs < budget:
                    t += est
                    n += pairs
                    g_sum += gsum
                    pos += 2 * pairs
                    continue
                end = pos + 2 * pairs
                while pos < end and t < boundary:
                    g = buf[pos]
                    if g_sum + n + g + 1 >= budget:
                        capped[cid] = True
                        break
                    t += g + cost
                    g_sum += g
                    n += 1
                    pos += 2
                break
            ns[cid] = n
            gaps[cid] = g_sum
            t_end[cid] = t
            pos_end[cid] = pos

        n_total = sum(ns)
        if n_total < MIN_SKIP_ACCESSES:
            self.last_decline = "span too small to be worth replaying"
            return None
        # De-convergence check: each core's in-span access share must
        # still match its converged-window share.  Cores whose walk
        # ended early for a structural reason -- finish-line cap or an
        # exhausted trace -- are excluded on both sides (their short
        # span is legitimate, and leaving them in would skew everyone
        # else's share).
        drifting = [
            cid
            for cid in range(num_cores)
            if not capped[cid] and pos_end[cid] < limits[cid]
        ]
        d_total = sum(ns[cid] for cid in drifting)
        dw_total = sum(w_acc[cid] for cid in drifting)
        if d_total > 0 and dw_total > 0:
            for cid in drifting:
                if abs(ns[cid] / d_total - w_acc[cid] / dw_total) > SHARE_DRIFT:
                    self.last_decline = (
                        f"core {cid} access share drifted from the "
                        f"converged window"
                    )
                    return None
        misses = [
            min(ns[p], _scaled(ns[p] * rates[p])) for p in range(num_cores)
        ]
        total_misses = sum(misses)
        # A partition whose converged window missed on *every* access
        # is streaming: its addresses are one-touch, so its sampled
        # UMON stacks can never produce a hit and only the sampled
        # access *count* (already rate-measurable from the window)
        # feeds its flat utility curve.  Its replay may therefore skip
        # per-address sample classification and advance the monitor
        # statistically -- the expensive part of a streaming replay.
        streaming = [
            w_acc[p] > 0 and delta["misses"][p] == w_acc[p]
            for p in range(num_cores)
        ]
        mon_rates = [
            delta["mon"][p] / w_acc[p] if w_acc[p] > 0 else 0.0
            for p in range(num_cores)
        ]
        model = self.model
        num_lines = cache.num_lines
        # Eq. 7 describes steady state in a *full* cache: while lines
        # remain free, misses install without demoting or evicting
        # anyone, so measured churn is legitimately zero regardless of
        # the forecast.  Only cross-check the model once the planned
        # misses would exhaust the free lines.
        free = num_lines - sum(cache.actual_size) - cache.unmanaged_size
        check_model = free < total_misses
        for p in range(num_cores):
            if not check_model:
                break
            if ns[p] == 0 or w_acc[p] == 0:
                continue
            fc = model.forecast(
                ns[p],
                rates[p],
                cache.actual_size[p],
                cache.target[p],
                num_lines,
                walk_misses=total_misses,
            )
            measured = delta["dem"][p] * (ns[p] / w_acc[p])
            hi = fc.demotions if fc.demotions > measured else measured
            if hi > MODEL_DRIFT_FLOOR:
                if abs(fc.demotions - measured) / hi > MODEL_DRIFT:
                    self.last_decline = (
                        f"partition {p} churn disagrees with the Eq. 7 forecast"
                    )
                    return None
        return {
            "boundary": boundary,
            "n": ns,
            "gaps": gaps,
            "t0": times,
            "t_end": t_end,
            "pos_end": pos_end,
            "misses": misses,
            "total_misses": total_misses,
            "qbar": qbar,
            "n_total": n_total,
            "w_total": w_total,
            "streaming": streaming,
            "mon_rates": mon_rates,
        }

    # ------------------------------------------------------------------
    # Commit: deposit the planned span into the concrete state.
    # ------------------------------------------------------------------

    def _commit(self, plan: dict) -> None:
        """Apply the span.  The split of labour is the tentpole's core
        trade:

        - *Functional* state -- the line array, partition clocks,
          demotion/promotion/eviction registers, setpoints and the
          sampled UMONs -- is advanced by replaying the skipped
          addresses through the cache's own transition
          (:meth:`_replay_core`).  This re-seeds the concrete footprint
          exactly, so post-resume behaviour does not inherit holes
          from the skip; without it, unsimulated installs compound
          into miss-rate drift far beyond the accuracy contract.
        - *Timing* state -- core clocks, instruction counters, memory
          requests/queueing -- is advanced in closed form from the
          converged window's rates (the expensive part of exact
          simulation, and the part the transfer-function model
          predicts well once stable).
        """
        cache = self.cache
        positions = self._positions
        num_cores = self.config.num_cores
        ns = plan["n"]
        qbar = plan["qbar"]
        hit_latency = self.config.l2_hit_latency
        mem_latency = self.memory.latency
        t0 = plan["t0"]
        t_end = plan["t_end"]
        total_misses = 0
        for cid in range(num_cores):
            if ns[cid]:
                core_misses = self._replay_core(
                    cid,
                    positions[cid],
                    plan["pos_end"][cid],
                    plan["streaming"][cid],
                    plan["mon_rates"][cid],
                )
                total_misses += core_misses
                # Re-price the core's clock with the *exact* miss count
                # the walk produced: the plan's rate-based estimate only
                # decided how many pairs fit before the boundary, and
                # repaying at the estimated rate would let estimation
                # error (e.g. a cold-start-biased window) leak into
                # finish times.
                t_end[cid] = (
                    t0[cid]
                    + plan["gaps"][cid]
                    + ns[cid] * (1.0 + hit_latency)
                    + core_misses * (mem_latency + qbar)
                )

        # Memory: the replayed misses issued at the window's mean queue
        # delay (already charged above), so the controllers only need
        # to look busy up to the *earliest* point any replayed core
        # resumes exact simulation -- bumping them to the latest span
        # end would make an early-resuming core's first misses queue
        # behind traffic that exact simulation would have interleaved
        # them with.  Contention after that point re-emerges naturally
        # from the simulated request stream.
        mem = self.memory
        mem.requests += total_misses
        mem.total_queue_cycles += _scaled(total_misses * qbar)
        t_resume = min(t_end[cid] for cid in range(num_cores) if ns[cid])
        free_at = mem._free_at
        for k in range(len(free_at)):
            if free_at[k] < t_resume:
                free_at[k] = t_resume

        # Scheduler: park every core at its modelled time with its
        # cursor past the skipped pairs (mirrors the kernels' park
        # contract, so re-entry needs no special case).
        instructions = self._instructions
        t_end = plan["t_end"]
        gaps = plan["gaps"]
        for cid in range(num_cores):
            instructions[cid] += gaps[cid] + ns[cid]
            positions[cid] = plan["pos_end"][cid]
        heap = self._heap
        if heap is None:
            times = self._times
            for cid in range(num_cores):
                times[cid] = t_end[cid]
        else:
            heap[:] = [(t_end[cid], cid) for cid in range(num_cores)]
            heapq.heapify(heap)

    def _bulk_install(self, p: int, addrs: list) -> bool:
        """Vectorized install of a pure-miss span (caller verified
        every address is distinct and absent): pop a validated free
        slot per address, then write the tag / owner / timestamp
        columns with numpy fancy assignment into views over the
        ``array("q")`` buffers.  Slot choice skips the own-position
        scan the scalar path tries first -- like the free-list
        fallback there, any free slot is statistically equivalent in
        a zcache.  The partition clock replays the exact tick
        sequence, and per-slot position wiring stays scalar (tuple
        slices).  Returns False with no state touched when the
        validated free slots run short; the scalar walk then handles
        the span (including its full-cache fallback)."""
        cache = self.cache
        array = cache.array
        tags = array._tags
        free = self._free_slots
        n = len(addrs)
        if n == 0:
            # Nothing to install; the register rewrite below must not
            # run (the scalar loop would have left state untouched).
            return True
        slots: list[int] = []
        ap = slots.append
        while free and len(slots) < n:
            s = free.pop()
            if tags[s] < 0:
                ap(s)
        if len(slots) < n:
            # Too few free lines left: hand the validated slots back
            # (order is immaterial) and let the scalar walk take over.
            free.extend(slots)
            return False
        views = self._np_views
        if views is None:
            views = self._np_views = (
                _np.frombuffer(tags, dtype=_np.int64),
                _np.frombuffer(cache.part_of, dtype=_np.int64),
                _np.frombuffer(cache.line_ts, dtype=_np.int64),
            )
        tags_np, part_np, ts_np = views
        slots_arr = _np.array(slots, dtype=_np.int64)
        tags_np[slots_arr] = _np.asarray(addrs, dtype=_np.int64)
        part_np[slots_arr] = p
        # Partition clock: replay the exact tick sequence the scalar
        # install loop would produce.  Every install grows the size,
        # so the period is recomputed each step as
        # ``P(i) = (size0 + i + 1) >> 4 or 1`` and the clock ticks when
        # the running count reaches it.  The clock value is constant
        # between ticks and a span holds only a handful of ticks
        # (count gains one per install, P one per sixteen), so the
        # walk jumps tick-to-tick and stamps whole stretches at once
        # instead of iterating per install.
        cts = cache.current_ts
        counters = cache.access_counter
        tick_size = cache._tick_size
        tick_period = cache._tick_period
        actual = cache.actual_size
        my_cts = cts[p]
        count = counters[p]
        size = actual[p]
        j = 0
        while j < n:
            # Next tick: smallest m >= 1 with count + m >= P(j + m - 1).
            # Both sides are nondecreasing in m and the left grows
            # strictly faster, so the fixed-point search below takes a
            # step or two.
            m = max(1, ((size + j + 1) >> 4 or 1) - count)
            while True:
                need = (size + j + m) >> 4 or 1
                if count + m >= need:
                    break
                m = need - count
            if j + m > n:
                # The span ends before the next tick.
                ts_np[slots_arr[j:]] = my_cts
                count += n - j
                break
            ts_np[slots_arr[j : j + m]] = my_cts
            my_cts = (my_cts + 1) & _TS_MASK
            count = 0
            j += m
        size += n
        cts[p] = my_cts
        counters[p] = count
        actual[p] = size
        tick_size[p] = size
        tick_period[p] = size >> 4 or 1
        # Structural wiring: each line's other candidate positions.
        pcache_get = array._position_cache.get
        positions = array.positions
        pbs = array._pos_by_slot
        num_sets = array.num_sets
        for addr, slot in zip(addrs, slots):
            pos = pcache_get(addr)
            if pos is None:
                pos = positions(addr)
            way = slot // num_sets
            pbs[slot] = pos[:way] + pos[way + 1 :]
        array._slot_of.update(zip(addrs, slots))
        return True

    def _free_list(self) -> list[int]:
        """Slots currently holding no line.  Built at most once per
        run: occupancy never shrinks (an eviction's slot is re-used by
        the same install), so stale entries can only be slots that
        have since been *filled*, which the consumer re-checks."""
        tags = self.cache.array._tags
        if _np is None:
            return [s for s, t in enumerate(tags) if t < 0]
        arr = _np.frombuffer(tags, dtype=_np.int64)
        return _np.flatnonzero(arr < 0).tolist()

    def _replay_core(
        self,
        p: int,
        start: int,
        end: int,
        streaming: bool = False,
        mon_rate: float = 0.0,
    ) -> int:
        """Walk one core's skipped ``(gap, addr)`` pairs through the
        cache's functional transition; returns the exact miss count.

        Everything the replay *doesn't* do (per-access timing,
        memory-controller queueing, event-heap scheduling, kernel
        dispatch) is exactly the expensive part of a simulated access,
        so both hot paths are inlined:

        - an own-partition LRU hit is a dict lookup, a timestamp stamp
          and the partition clock tick;
        - a miss while free lines remain installs at the first empty
          slot among the address's own hash positions, or -- when all
          are occupied -- at an arbitrary free slot.  A real zcache
          walk would have relocated lines to reach *some* empty slot;
          which one is immaterial, because zcache candidates behave as
          a uniform sample of the array (the property Vantage's own
          analysis rests on), so the replacement statistics the
          post-resume simulation sees are unchanged.

        Misses in a full cache and foreign-owner hits fall back to the
        cache's real ``_miss``/``_hit`` methods, so replacement walks,
        demotions, setpoint feedback and eviction accounting stay the
        simulator's own.  Sampled-UMON state is advanced with the real
        monitor, so the next epoch's Lookahead allocation sees exact
        way counters.
        """
        cache = self.cache
        array = cache.array
        slot_of = array._slot_of
        lookup = slot_of.get
        tags = array._tags
        pbs = array._pos_by_slot
        num_sets = array.num_sets
        pcache_get = array._position_cache.get
        positions = array.positions
        part_of = cache.part_of
        line_ts = cache.line_ts
        cts = cache.current_ts
        counters = cache.access_counter
        tick_size = cache._tick_size
        tick_period = cache._tick_period
        actual = cache.actual_size
        miss = cache._miss
        hit = cache._hit
        if streaming:
            # Pure-miss span: skip per-address sample classification
            # entirely (the monitor is advanced statistically below).
            sample_get = None
            mon_access = None
        else:
            mon = self.monitors[p]
            # Classify the whole span in bulk so the walk below only
            # calls into the monitor for genuinely sampled accesses
            # (identical decisions, computed vectorized; first-touch
            # classification-only calls would otherwise dominate the
            # walk on install-heavy cores).
            mon.prime_sample_cache(self._bufs[p][start + 1 : end : 2])
            sample_get = self.policy._sample_gets[p]
            mon_access = mon.access
        buf = self._bufs[p]
        free = self._free_slots
        if streaming and _np is not None:
            # A streaming span whose addresses are all distinct and all
            # absent is pure installs: no lookup outcome to branch on,
            # so the install columns can be written vectorized.  Both
            # preconditions are checked exactly (C-speed set algebra);
            # any re-reference or resident address falls through to the
            # scalar walk below.
            addr_list = buf[start + 1 : end : 2]
            n = len(addr_list)
            if free is None:
                free = self._free_slots = self._free_list()
            if len(free) >= n:
                addr_set = set(addr_list)
                if len(addr_set) == n and not (addr_set & slot_of.keys()):
                    if self._bulk_install(p, addr_list):
                        st = cache.stats
                        st.accesses[p] += n
                        st.misses[p] += n
                        self.monitors[p].model_advance(
                            _scaled(n * mon_rate), ()
                        )
                        self.policy.observed[p] += n
                        return n
        hits = 0
        misses = 0
        observed = 0
        # The whole walk is one partition: its clock/tick registers
        # live in locals for the loop and flush back at the end (and
        # around the rare ``_hit``/``_miss`` fallbacks, which mutate
        # the same registers on the cache object).
        my_cts = cts[p]
        count = counters[p]
        size = actual[p]
        t_size = tick_size[p]
        t_period = tick_period[p]
        for addr in buf[start + 1 : end : 2]:
            slot = lookup(addr)
            if slot is not None:
                if part_of[slot] == p:
                    # Inlined stock-LRU hit + _tick: stamp and clock.
                    line_ts[slot] = my_cts
                    count += 1
                    if size != t_size:
                        t_size = size
                        t_period = size >> 4 or 1
                    if count >= t_period:
                        count = 0
                        my_cts = (my_cts + 1) & _TS_MASK
                else:
                    # Promotion or foreign-owner hit: rare, take the
                    # cache's own path (flush/reload the registers it
                    # shares with this loop).
                    cts[p] = my_cts
                    counters[p] = count
                    actual[p] = size
                    tick_size[p] = t_size
                    tick_period[p] = t_period
                    hit(slot, p)
                    my_cts = cts[p]
                    count = counters[p]
                    size = actual[p]
                    t_size = tick_size[p]
                    t_period = tick_period[p]
                hits += 1
                if sample_get is not None and sample_get(addr, -1) is not None:
                    observed += 1
                    mon_access(addr)
                continue
            misses += 1
            pos = pcache_get(addr)
            if pos is None:
                pos = positions(addr)
            way = 0
            slot = -1
            for s in pos:
                if tags[s] < 0:
                    slot = s
                    break
                way += 1
            if slot < 0:
                if free is None:
                    free = self._free_list()
                while free:
                    s = free.pop()
                    if tags[s] < 0:
                        slot = s
                        way = s // num_sets
                        break
            if slot < 0:
                # No free line anywhere: full-cache replacement walk.
                cts[p] = my_cts
                counters[p] = count
                actual[p] = size
                tick_size[p] = t_size
                tick_period[p] = t_period
                miss(addr, p)
                my_cts = cts[p]
                count = counters[p]
                size = actual[p]
                t_size = tick_size[p]
                t_period = tick_period[p]
            else:
                tags[slot] = addr
                slot_of[addr] = slot
                pbs[slot] = pos[:way] + pos[way + 1 :]
                part_of[slot] = p
                line_ts[slot] = my_cts
                size += 1
                count += 1
                if size != t_size:
                    t_size = size
                    t_period = size >> 4 or 1
                if count >= t_period:
                    count = 0
                    my_cts = (my_cts + 1) & _TS_MASK
            if sample_get is not None and sample_get(addr, -1) is not None:
                observed += 1
                mon_access(addr)
        cts[p] = my_cts
        counters[p] = count
        actual[p] = size
        tick_size[p] = t_size
        tick_period[p] = t_period
        self._free_slots = free
        st = cache.stats
        st.accesses[p] += hits + misses
        st.hits[p] += hits
        st.misses[p] += misses
        if streaming:
            # One-touch addresses are all unclassified, so the exact
            # path would have "observed" every one; of those, the
            # window's measured sampling rate fell into the monitor.
            # The sampled addrs can never hit (no re-reference), so
            # position_hits stays untouched and the flat miss curve
            # Lookahead reads keeps its modelled scale.
            n = hits + misses
            observed = n
            self.monitors[p].model_advance(_scaled(n * mon_rate), ())
        self.policy.observed[p] += observed
        return misses

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def skipped_fraction(self) -> float:
        """Fraction of all L2 accesses that were replayed, not
        simulated (modelled accesses are part of the total)."""
        total = sum(self.cache.stats.accesses)
        return self.skipped_accesses / total if total else 0.0

    def would_skip_fraction(self) -> float:
        """Detection-only twin of :meth:`skipped_fraction`: fraction
        that *would* have been replayed (all were simulated)."""
        total = sum(self.cache.stats.accesses)
        return self.would_skip_accesses / total if total else 0.0
