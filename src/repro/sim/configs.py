"""System configurations (Table 2 of the paper).

Latencies are in cycles of the 2 GHz clock; the memory bandwidth is
expressed in bytes per cycle so the queueing model needs no unit
conversions at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

LINE_BYTES = 64


@dataclass(frozen=True)
class SystemConfig:
    """CMP parameters consumed by :class:`repro.sim.system.CMPSystem`."""

    num_cores: int
    l2_bytes: int
    l2_banks: int
    mem_bandwidth_gbs: float
    l1_bytes: int = 32 * 1024
    l1_ways: int = 4
    line_bytes: int = LINE_BYTES
    l1_latency: int = 1
    l1_to_l2_latency: int = 4
    l2_bank_latency: int = 8
    mem_latency: int = 200
    mem_controllers: int = 4
    freq_ghz: float = 2.0
    epoch_cycles: int = 5_000_000

    @property
    def l2_lines(self) -> int:
        return self.l2_bytes // self.line_bytes

    @property
    def l2_hit_latency(self) -> int:
        return self.l1_to_l2_latency + self.l2_bank_latency

    @property
    def mem_bytes_per_cycle(self) -> float:
        return self.mem_bandwidth_gbs * 1e9 / (self.freq_ghz * 1e9)


def large_system(**overrides) -> SystemConfig:
    """The 32-core CMP of Table 2: 8 MB shared L2, 32 GB/s memory."""
    params = dict(
        num_cores=32,
        l2_bytes=8 * 1024 * 1024,
        l2_banks=4,
        mem_bandwidth_gbs=32.0,
    )
    params.update(overrides)
    return SystemConfig(**params)


def small_system(**overrides) -> SystemConfig:
    """The 4-core CMP: 2 MB single-bank L2, 4 GB/s memory."""
    params = dict(
        num_cores=4,
        l2_bytes=2 * 1024 * 1024,
        l2_banks=1,
        mem_bandwidth_gbs=4.0,
    )
    params.update(overrides)
    return SystemConfig(**params)
