"""Trace-driven CMP substrate: cores, L1s, memory, full-system loop."""

from repro.sim.configs import LINE_BYTES, SystemConfig, large_system, small_system
from repro.sim.l1 import L1Cache
from repro.sim.memory import MemoryModel
from repro.sim.system import CMPSystem, CoreResult, SystemResult

__all__ = [
    "CMPSystem",
    "CoreResult",
    "L1Cache",
    "LINE_BYTES",
    "MemoryModel",
    "SystemConfig",
    "SystemResult",
    "large_system",
    "small_system",
]
