"""Private L1 data-cache model.

A plain set-associative LRU cache used to filter core access streams
before they reach the shared L2.  Kept deliberately simple (lists in
MRU order) -- it only needs to be a faithful filter, not an object of
study.
"""

from __future__ import annotations


class L1Cache:
    """Set-associative LRU L1 (32 KB, 4-way by default)."""

    __slots__ = ("num_sets", "num_ways", "_mask", "_sets", "accesses", "misses")

    def __init__(self, size_bytes: int = 32 * 1024, num_ways: int = 4, line_bytes: int = 64):
        num_lines = size_bytes // line_bytes
        if num_lines % num_ways:
            raise ValueError("L1 size must be a multiple of ways * line size")
        self.num_sets = num_lines // num_ways
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("L1 set count must be a power of two")
        self.num_ways = num_ways
        self._mask = self.num_sets - 1
        # Each set is a list of line addresses in MRU-first order.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, line_addr: int) -> bool:
        """Access one line; returns True on hit."""
        self.accesses += 1
        ways = self._sets[line_addr & self._mask]
        try:
            ways.remove(line_addr)
        except ValueError:
            self.misses += 1
            ways.insert(0, line_addr)
            if len(ways) > self.num_ways:
                ways.pop()
            return False
        ways.insert(0, line_addr)
        return True

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
