"""Additional baseline policies: LFU and random replacement.

Neither appears in the paper's headline results, but both are useful
reference points (Section 4.2 mentions LFU as an example of a policy
that generalises to setpoint-based demotions) and exercise the policy
interface from a different angle in tests.
"""

from __future__ import annotations

import random

from repro.arrays.base import Candidate
from repro.replacement.base import SlotStatePolicy

LFU_MAX = 255


class LFUPolicy(SlotStatePolicy):
    """Least-frequently-used with a saturating 8-bit counter per line."""

    name = "lfu"

    def on_hit(self, slot: int, part: int, addr: int) -> None:
        if self.state[slot] < LFU_MAX:
            self.state[slot] += 1

    def on_insert(self, slot: int, part: int, addr: int) -> None:
        self.state[slot] = 1

    def age_key(self, slot: int) -> int:
        return LFU_MAX - self.state[slot]

    def select_victim(self, candidates: list[Candidate]) -> Candidate:
        state = self.state
        return min(
            (c for c in candidates if c.addr is not None),
            key=lambda c: state[c.slot],
        )

    def select_victim_index(self, slots: list[int]) -> int:
        state = self.state
        best = 0
        best_count = state[slots[0]]
        for i in range(1, len(slots)):
            count = state[slots[i]]
            if count < best_count:
                best_count = count
                best = i
        return best


class RandomPolicy(SlotStatePolicy):
    """Uniformly random victim selection."""

    name = "random"

    def __init__(self, num_lines: int, seed: int = 0):
        super().__init__(num_lines)
        self._rng = random.Random(seed)

    def on_hit(self, slot: int, part: int, addr: int) -> None:
        pass

    def on_insert(self, slot: int, part: int, addr: int) -> None:
        pass

    def select_victim(self, candidates: list[Candidate]) -> Candidate:
        occupied = [c for c in candidates if c.addr is not None]
        return self._rng.choice(occupied)

    def select_victim_index(self, slots: list[int]) -> int:
        # choice(seq) draws one _randbelow(len(seq)), so RNG
        # consumption matches select_victim on the same-length list.
        return self._rng.choice(range(len(slots)))
