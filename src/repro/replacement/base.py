"""Replacement-policy abstraction.

Policies keep per-slot metadata (timestamps, RRPVs, counters), observe
hits / insertions / relocations, and pick a victim among the
replacement candidates an array offers.  They are deliberately
*set-order-free*: zcaches and skew caches break the concept of a set,
so a policy may only rely on per-line state and global counters (the
constraint Section 3.2 of the paper calls out).

The Vantage controller does **not** use these classes -- it embeds its
own per-partition coarse-timestamp LRU / RRIP state (Section 4) -- but
the unpartitioned baseline and way-partitioning do, and the RRIP
family here is the comparison set for Figure 11.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array

from repro.arrays.base import Candidate


class ReplacementPolicy(ABC):
    """Per-line ranking used by non-Vantage caches.

    ``part`` arguments identify the accessing partition (thread); most
    policies ignore it, thread-aware ones (TA-DRRIP) do not.
    """

    name = "base"

    def __init__(self, num_lines: int):
        if num_lines <= 0:
            raise ValueError(f"num_lines must be positive, got {num_lines}")
        self.num_lines = num_lines

    @abstractmethod
    def on_hit(self, slot: int, part: int, addr: int) -> None:
        """A lookup hit the line at ``slot``."""

    @abstractmethod
    def on_insert(self, slot: int, part: int, addr: int) -> None:
        """A new line was installed at ``slot`` (a miss was serviced)."""

    @abstractmethod
    def select_victim(self, candidates: list[Candidate]) -> Candidate:
        """Choose the line to evict among occupied ``candidates``."""

    def select_victim_index(self, slots: list[int]) -> int | None:
        """Fast-path victim selection over plain slot indices.

        ``slots`` are all occupied (the caller installs into empties
        before consulting the policy).  Returns the victim's index in
        ``slots``, or ``None`` when the policy has no fast path, in
        which case callers fall back to :meth:`select_victim` with
        materialised candidates.  Must behave exactly like
        ``select_victim`` on the same (fully occupied) candidate list,
        including any state mutation and RNG consumption.
        """
        return None

    def on_move(self, src: int, dst: int) -> None:
        """The line at ``src`` was relocated to ``dst`` (zcache walks)."""

    def on_invalidate(self, slot: int) -> None:
        """The line at ``slot`` was removed without replacement."""

    def age_key(self, slot: int) -> int:
        """Monotone staleness key: larger means closer to eviction.

        Used only for measurement (empirical associativity CDFs); the
        default of 0 makes every line look equally old.
        """
        return 0

    def register_stats(self, group) -> None:
        """Register policy telemetry; the default exposes the policy
        name (and PSEL for set-dueling policies, when present)."""
        group.stat("name", lambda: self.name, "replacement policy name")
        if hasattr(self, "psel"):
            group.stat(
                "psel", lambda: self.psel, "set-dueling policy selector"
            )
        if hasattr(self, "psel_per_thread"):
            group.stat(
                "psel_per_thread",
                lambda: list(self.psel_per_thread),
                "per-thread set-dueling policy selectors",
            )


class SlotStatePolicy(ReplacementPolicy):
    """Helper base class owning one integer of state per slot."""

    def __init__(self, num_lines: int, initial: int = 0):
        super().__init__(num_lines)
        # Flat structure-of-arrays state column: every concrete policy
        # stores small non-negative integers (timestamps mod 256,
        # RRPVs, frequency counters), so one signed 64-bit word per
        # slot replaces a list of PyObject pointers.
        self.state = array("q", [initial]) * num_lines

    def on_move(self, src: int, dst: int) -> None:
        self.state[dst] = self.state[src]

    def on_invalidate(self, slot: int) -> None:
        self.state[slot] = 0
