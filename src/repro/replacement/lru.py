"""LRU replacement: coarse-timestamp (8-bit) and perfect variants.

Coarse-timestamp LRU is the zcache paper's recommended implementation:
an 8-bit global timestamp is bumped every ``num_lines / 16`` accesses
and written into the accessed line's tag; the victim is the candidate
with the oldest timestamp in modulo-256 arithmetic.  Perfect LRU keeps
a full 64-bit access counter per line and is used by tests and by the
UMON shadow tags, where exact stack distances matter.
"""

from __future__ import annotations

from repro.arrays.base import Candidate
from repro.replacement.base import SlotStatePolicy

TIMESTAMP_BITS = 8
TIMESTAMP_MOD = 1 << TIMESTAMP_BITS


class CoarseLRUPolicy(SlotStatePolicy):
    """8-bit coarse-grain timestamp LRU (zcache-style)."""

    name = "lru"

    def __init__(self, num_lines: int):
        super().__init__(num_lines, initial=0)
        self.current_ts = 0
        self._accesses = 0
        # One timestamp bump every 1/16th of the cache's worth of
        # accesses keeps wrap-arounds rare (the paper's choice).
        self._granularity = max(1, num_lines // 16)

    def _tick(self) -> None:
        self._accesses += 1
        if self._accesses >= self._granularity:
            self._accesses = 0
            self.current_ts = (self.current_ts + 1) % TIMESTAMP_MOD

    def on_hit(self, slot: int, part: int, addr: int) -> None:
        self.state[slot] = self.current_ts
        self._tick()

    def on_insert(self, slot: int, part: int, addr: int) -> None:
        self.state[slot] = self.current_ts
        self._tick()

    def age_key(self, slot: int) -> int:
        return (self.current_ts - self.state[slot]) % TIMESTAMP_MOD

    def select_victim(self, candidates: list[Candidate]) -> Candidate:
        current = self.current_ts
        state = self.state
        return max(
            (c for c in candidates if c.addr is not None),
            key=lambda c: (current - state[c.slot]) % TIMESTAMP_MOD,
        )

    def select_victim_index(self, slots: list[int]) -> int:
        # max() keeps the first of equals, like select_victim.
        current = self.current_ts
        state = self.state
        best = 0
        best_age = (current - state[slots[0]]) % TIMESTAMP_MOD
        for i in range(1, len(slots)):
            age = (current - state[slots[i]]) % TIMESTAMP_MOD
            if age > best_age:
                best_age = age
                best = i
        return best


class PerfectLRUPolicy(SlotStatePolicy):
    """Exact LRU via a monotonically increasing access counter."""

    name = "perfect-lru"

    def __init__(self, num_lines: int):
        super().__init__(num_lines, initial=0)
        self._clock = 0

    def on_hit(self, slot: int, part: int, addr: int) -> None:
        self._clock += 1
        self.state[slot] = self._clock

    def on_insert(self, slot: int, part: int, addr: int) -> None:
        self._clock += 1
        self.state[slot] = self._clock

    def age_key(self, slot: int) -> int:
        return self._clock - self.state[slot]

    def select_victim(self, candidates: list[Candidate]) -> Candidate:
        state = self.state
        return min(
            (c for c in candidates if c.addr is not None),
            key=lambda c: state[c.slot],
        )

    def select_victim_index(self, slots: list[int]) -> int:
        state = self.state
        best = 0
        best_clock = state[slots[0]]
        for i in range(1, len(slots)):
            clock = state[slots[i]]
            if clock < best_clock:
                best_clock = clock
                best = i
        return best
