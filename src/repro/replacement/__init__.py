"""Replacement policies usable on any array (set-order-free)."""

from repro.replacement.base import ReplacementPolicy, SlotStatePolicy
from repro.replacement.lru import CoarseLRUPolicy, PerfectLRUPolicy
from repro.replacement.other import LFUPolicy, RandomPolicy
from repro.replacement.rrip import (
    BRRIPPolicy,
    DRRIPPolicy,
    SRRIPPolicy,
    TADRRIPPolicy,
)

_POLICIES = {
    "lru": CoarseLRUPolicy,
    "perfect-lru": PerfectLRUPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
    "ta-drrip": TADRRIPPolicy,
    "lfu": LFUPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, num_lines: int, **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Known names: ``lru``, ``perfect-lru``, ``srrip``, ``brrip``,
    ``drrip``, ``ta-drrip``, ``lfu``, ``random``.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_lines, **kwargs)


__all__ = [
    "BRRIPPolicy",
    "CoarseLRUPolicy",
    "DRRIPPolicy",
    "LFUPolicy",
    "PerfectLRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "SlotStatePolicy",
    "TADRRIPPolicy",
    "make_policy",
]
