"""The RRIP replacement family (Jaleel et al., ISCA 2010).

Re-Reference Interval Prediction keeps a small RRPV (re-reference
prediction value) per line: 0 predicts an imminent re-reference, the
maximum value a distant one.  Victims are lines already at the maximum
RRPV; when none of the candidates is, all candidates age until one is.

- SRRIP (scan-resistant) inserts at ``max - 1``.
- BRRIP (thrash-resistant) inserts at ``max`` except for a small
  fraction epsilon of insertions at ``max - 1``.
- DRRIP duels SRRIP against BRRIP on dedicated leader accesses and
  steers the followers with a saturating PSEL counter.
- TA-DRRIP duels per thread (TADIP-style), one PSEL per thread.

Since zcaches have no sets, leader *sets* become leader *addresses*:
an H3-style hash of the address selects a constituency, exactly like
the sampled-duelling formulation of the DIP papers.
"""

from __future__ import annotations

import random

from repro.arrays.base import Candidate
from repro.replacement.base import SlotStatePolicy

RRPV_BITS = 3
RRPV_MAX = (1 << RRPV_BITS) - 1
BRRIP_EPSILON = 1 / 32
PSEL_BITS = 10
PSEL_MAX = (1 << PSEL_BITS) - 1
# Out of every 1024 address constituencies, 32 lead for each policy.
LEADER_PERIOD = 1024
LEADERS_PER_POLICY = 32


class _RRIPBase(SlotStatePolicy):
    """Common RRPV bookkeeping for all RRIP variants."""

    def __init__(self, num_lines: int, seed: int = 0):
        super().__init__(num_lines, initial=RRPV_MAX)
        self._rng = random.Random(seed)

    def on_hit(self, slot: int, part: int, addr: int) -> None:
        # Hit promotion (HP policy): predict near-immediate re-reference.
        self.state[slot] = 0

    def age_key(self, slot: int) -> int:
        return self.state[slot]

    def select_victim(self, candidates: list[Candidate]) -> Candidate:
        state = self.state
        occupied = [c for c in candidates if c.addr is not None]
        while True:
            for cand in occupied:
                if state[cand.slot] >= RRPV_MAX:
                    return cand
            # No candidate is at the maximum RRPV: age the candidates.
            # (In a set-associative cache the candidates *are* the set,
            # so this matches the original formulation.)
            for cand in occupied:
                state[cand.slot] += 1

    def select_victim_index(self, slots: list[int]) -> int:
        state = self.state
        while True:
            for i, slot in enumerate(slots):
                if state[slot] >= RRPV_MAX:
                    return i
            for slot in slots:
                state[slot] += 1

    # Insertion RRPVs used by the concrete policies.

    def _insert_srrip(self, slot: int) -> None:
        self.state[slot] = RRPV_MAX - 1

    def _insert_brrip(self, slot: int) -> None:
        if self._rng.random() < BRRIP_EPSILON:
            self.state[slot] = RRPV_MAX - 1
        else:
            self.state[slot] = RRPV_MAX


class SRRIPPolicy(_RRIPBase):
    """Static RRIP: scan-resistant insertion at max-1."""

    name = "srrip"

    def on_insert(self, slot: int, part: int, addr: int) -> None:
        self._insert_srrip(slot)


class BRRIPPolicy(_RRIPBase):
    """Bimodal RRIP: thrash-resistant insertion mostly at max."""

    name = "brrip"

    def on_insert(self, slot: int, part: int, addr: int) -> None:
        self._insert_brrip(slot)


class DRRIPPolicy(_RRIPBase):
    """Dynamic RRIP: duels SRRIP vs BRRIP with a single PSEL counter."""

    name = "drrip"

    def __init__(self, num_lines: int, seed: int = 0):
        super().__init__(num_lines, seed)
        self.psel = PSEL_MAX // 2

    @staticmethod
    def _constituency(addr: int) -> int:
        # Cheap address mix so constituencies are not correlated with
        # the workload's own striding.
        return (addr * 0x9E3779B97F4A7C15 >> 13) % LEADER_PERIOD

    def _leader(self, addr: int, part: int) -> str | None:
        group = self._constituency(addr)
        if group < LEADERS_PER_POLICY:
            return "srrip"
        if group < 2 * LEADERS_PER_POLICY:
            return "brrip"
        return None

    def on_insert(self, slot: int, part: int, addr: int) -> None:
        leader = self._leader(addr, part)
        if leader == "srrip":
            # A miss on an SRRIP leader is a vote against SRRIP.
            self._vote(part, +1)
            self._insert_srrip(slot)
        elif leader == "brrip":
            self._vote(part, -1)
            self._insert_brrip(slot)
        elif self._follower_uses_srrip(part):
            self._insert_srrip(slot)
        else:
            self._insert_brrip(slot)

    def _vote(self, part: int, delta: int) -> None:
        self.psel = min(PSEL_MAX, max(0, self.psel + delta))

    def _follower_uses_srrip(self, part: int) -> bool:
        return self.psel <= PSEL_MAX // 2


class TADRRIPPolicy(DRRIPPolicy):
    """Thread-aware DRRIP: one PSEL and one duel per thread."""

    name = "ta-drrip"

    def __init__(self, num_lines: int, num_threads: int = 64, seed: int = 0):
        super().__init__(num_lines, seed)
        self.psel_per_thread = [PSEL_MAX // 2] * num_threads

    def _leader(self, addr: int, part: int) -> str | None:
        # Offset constituencies per thread so each thread has its own
        # leader addresses (TADIP's thread-aware duelling).
        group = (self._constituency(addr) + part * 2 * LEADERS_PER_POLICY) % LEADER_PERIOD
        if group < LEADERS_PER_POLICY:
            return "srrip"
        if group < 2 * LEADERS_PER_POLICY:
            return "brrip"
        return None

    def _vote(self, part: int, delta: int) -> None:
        psel = self.psel_per_thread
        psel[part] = min(PSEL_MAX, max(0, psel[part] + delta))

    def _follower_uses_srrip(self, part: int) -> bool:
        return self.psel_per_thread[part] <= PSEL_MAX // 2
